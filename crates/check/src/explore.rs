//! The bounded depth-first schedule explorer.
//!
//! The search space is a tree of **choice prefixes**: a run consumes its
//! prefix at each branch point and continues with choice 0 (calendar order)
//! once the prefix is spent; branch points encountered past the prefix
//! report how many options they offered, and their untaken siblings become
//! new DFS nodes.  Two execution strategies realize the same tree:
//!
//! * **Snapshot resume** (default): at each expandable branch point the
//!   world is cloned ([`SimWorld::snapshot`]) once per untaken sibling, and
//!   the sibling's run later *resumes* from that clone — no settle phase,
//!   no prefix re-execution.  This is where the incremental fingerprints
//!   and the snapshot machinery earn their throughput (E25).
//! * **Stateless replay** (fallback, and the replay path for committed
//!   schedules): the run re-executes from `Scenario::build`, consuming the
//!   prefix choice by choice.  Used automatically when a stack layer opts
//!   out of snapshotting, and on demand via `--no-snapshot` /
//!   [`CheckConfig::snapshot_resume`] — the equivalence tests hold the two
//!   strategies to identical runs, states, and verdicts.
//!
//! Three bounds keep the space finite:
//!
//! * **depth** — only the first `max_depth` branch points of a run offer
//!   alternatives; beyond that the run is deterministic calendar order.
//! * **drops** — at most `max_drops` induced message drops per run.
//! * **states** — a global budget on distinct world fingerprints; reaching a
//!   fingerprint seen before prunes the subtree (the continuation from an
//!   identical state was, or will be, explored elsewhere).
//!
//! The *reduction* is happens-before dynamic partial-order reduction with
//! **sleep sets** (Godefroid): when a branch point's options are explored,
//! each later sibling inherits the earlier siblings' fire events as
//! *sleeping* — events whose firing is postponed in that subtree because
//! every ordering that fires them first is explored from the earlier
//! sibling.  A sleeping event wakes as soon as a *dependent* event fires:
//! dependence is sharing a target endpoint, involving a crash, differing in
//! effective firing time (order then shifts downstream emission times), or
//! being causally ordered by the vector clocks the simulator threads
//! through event creation ([`SimWorld::causally_ordered`]).  Runs whose
//! every option is asleep halt — the reduction's savings.  Unlike the
//! endpoint-class heuristic this replaces, sleep sets *never narrow the
//! option list* (enumeration and committed fixtures see the identical,
//! unfiltered options) and never skip a reachable state: the differential
//! suite holds the DPOR visited-fingerprint set equal to `--no-reduction`'s
//! on every registry scenario, at a fraction of the runs (E27 vs E24).
//! Visited-state pruning cooperates via sleep-aware entries: a state is
//! pruned only when it was previously reached with a sleep set no larger
//! than the current one (re-visits store the intersection), which is what
//! keeps caching sound under sleep sets.

use crate::scenario::{Oracle, Scenario};
use horus_core::prelude::{EndpointAddr, SimTime, Up};
use horus_core::trace::TraceSink;
use horus_sim::sched::{RunOutcome, Scheduler, Step};
use horus_sim::{EventId, ReadyEvent, ReadyKind, SimWorld};
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pass-through hasher for the visited set: its keys are world fingerprints,
/// already FNV-mixed 64-bit digests, so hashing them again buys nothing —
/// the digest *is* the hash.
#[derive(Default)]
pub struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("fingerprint sets hash u64 keys via write_u64")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// The visited-fingerprint set: one bit of truth per distinct world state.
pub type FpSet = HashSet<u64, BuildHasherDefault<FpHasher>>;

/// The sleep-aware visited map: per distinct world fingerprint, the
/// smallest sleep set any visit arrived with (canonicalized; see
/// [`Visited::check_insert`]).
///
/// Plain fingerprint caching is unsound under sleep sets: a state first
/// reached with events asleep explored *fewer* continuations than a later
/// visit with a smaller sleep set would, so pruning that later visit loses
/// states.  The classical repair (Godefroid, state-space caching): prune a
/// revisit only when a previous visit's sleep set was a **subset** of the
/// current one; otherwise re-explore and store the intersection.  With the
/// reduction off every sleep set is empty, every subset test passes, and
/// this degenerates to exactly the plain [`FpSet`] behaviour.
#[derive(Default)]
pub struct Visited {
    #[allow(clippy::type_complexity)]
    map: HashMap<u64, Box<[(u64, u64)]>, BuildHasherDefault<FpHasher>>,
}

impl Visited {
    /// Distinct fingerprints recorded.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when no fingerprint has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The recorded fingerprints (for differential coverage comparisons).
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.keys().copied()
    }

    /// Records a visit to `fp` under canonical sleep key `key`.  Returns
    /// `false` when the visit is redundant (prune): some earlier visit
    /// covered at least every continuation this one would explore.
    fn check_insert(&mut self, fp: u64, key: &[(u64, u64)]) -> bool {
        match self.map.entry(fp) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(key.into());
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let stored = e.get();
                if stored.iter().all(|s| key.contains(s)) {
                    return false; // stored ⊆ current: already covered.
                }
                // Re-explore; remember the intersection so future visits
                // prune only against what *both* explorations covered.
                let both: Vec<(u64, u64)> =
                    stored.iter().copied().filter(|s| key.contains(s)).collect();
                e.insert(both.into_boxed_slice());
                true
            }
        }
    }
}

/// One sleeping event: a pending calendar entry whose firing is postponed
/// in this subtree because every schedule firing it *first* is explored
/// from an earlier sibling of some ancestor branch point.
///
/// Only *reducible* events sleep — events dispatching into exactly one
/// endpoint ([`ReadyKind::target`] is `Some`) and not crashes.  World-global
/// events (partition/heal/fault) and crashes commute with nothing, so they
/// are never postponed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SleepEntry {
    /// Calendar id — stable within a run lineage (snapshots clone the
    /// calendar; fresh replays re-create identical insertion sequences).
    id: EventId,
    /// The endpoint the event dispatches into.
    target: EndpointAddr,
    /// Scheduled firing time (effective time is `max(now, at)`).
    at: SimTime,
    /// Run-independent payload digest, used in the canonical visited key so
    /// converging runs agree on what is asleep.
    digest: u64,
}

/// Builds a sleep entry for `Fire(i)` of `ready[i]`, if the event is
/// reducible.
fn sleep_entry(world: &SimWorld, ev: &ReadyEvent) -> Option<SleepEntry> {
    if matches!(ev.kind, ReadyKind::Crash { .. }) {
        return None;
    }
    let target = ev.kind.target()?;
    Some(SleepEntry {
        id: ev.id,
        target,
        at: ev.at,
        digest: world.pending_digest(ev.id).unwrap_or(0),
    })
}

/// The happens-before independence check: a sleeping event stays asleep
/// across the firing of `f` only when the two orders provably commute —
/// distinct endpoint targets (disjoint stacks), neither a crash, identical
/// effective firing times (otherwise order shifts `now`, and with it every
/// downstream emission time), and no causal order between their creation
/// contexts (the vector clocks refine the static target test: an event
/// created *by* another is never an exchangeable race).
fn independent(world: &SimWorld, now: SimTime, e: &SleepEntry, f: &ReadyEvent) -> bool {
    if matches!(f.kind, ReadyKind::Crash { .. }) {
        return false;
    }
    let Some(ft) = f.kind.target() else { return false };
    if e.target == ft {
        return false;
    }
    if e.at.max(now) != f.at.max(now) {
        return false;
    }
    !world.causally_ordered(e.id, f.id)
}

/// Canonicalizes a sleep set for the visited map: sorted
/// `(effective-delay, payload-digest)` pairs.  Calendar ids are
/// run-*dependent* (insertion sequence), absolute times depend on the path
/// length — the delay relative to `now` plus the payload digest is what two
/// converging runs agree on.
fn sleep_key(now: SimTime, sleep: &[SleepEntry]) -> Vec<(u64, u64)> {
    let mut key: Vec<(u64, u64)> =
        sleep.iter().map(|e| ((e.at.max(now) - now).as_nanos() as u64, e.digest)).collect();
    key.sort_unstable();
    key
}

/// The deterministic option list for a ready set — the *one* enumeration
/// everything downstream agrees on: the explorer's branch points, committed
/// fixtures' choice indices, and the trace→schedule bridge (which must map
/// observed events back to the indices a replay would consume).  Order is
/// load-bearing: fires first (index == ready position), then drops, then
/// crashes, then ordered suspicion pairs, each block present only while its
/// budget lasts so zero budgets leave earlier indices untouched.
pub(crate) fn enumerate_options(
    members: u64,
    world: &SimWorld,
    ready: &[ReadyEvent],
    drops_left: u32,
    crashes_left: u32,
    suspects_left: u32,
    opts: &mut Vec<Step>,
) {
    opts.clear();
    opts.extend((0..ready.len()).map(Step::Fire));
    if drops_left > 0 {
        opts.extend(
            ready
                .iter()
                .enumerate()
                .filter(|(_, ev)| ev.kind.droppable())
                .map(|(i, _)| Step::Drop(i)),
        );
    }
    // Crash choice points (appended last so legacy indices survive a
    // zero budget): with budget left, any still-alive member may
    // fail-stop *here*, before anything in the ready set fires.
    if crashes_left > 0 {
        opts.extend(
            (1..=members).map(EndpointAddr::new).filter(|&m| world.is_alive(m)).map(Step::Crash),
        );
    }
    // Suspicion choice points (after the crash range, same index-
    // stability contract): any alive member may be told — truthfully
    // or not — to suspect any other alive member *here*.
    if suspects_left > 0 {
        let alive: Vec<EndpointAddr> =
            (1..=members).map(EndpointAddr::new).filter(|&m| world.is_alive(m)).collect();
        for &observer in &alive {
            opts.extend(
                alive
                    .iter()
                    .copied()
                    .filter(|&target| target != observer)
                    .map(|target| Step::Suspect { observer, target }),
            );
        }
    }
}

/// Bounds and knobs for one exploration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Concurrency window: ready events within this much of the earliest
    /// pending event may be reordered.  Zero means exact ties only.
    pub window: Duration,
    /// Happens-before dynamic partial-order reduction via sleep sets: skip
    /// sibling runs whose reordering provably commutes with an
    /// already-explored one.  Never narrows the option list (replayed
    /// fixtures see identical enumeration) and never loses a state — the
    /// differential suite holds the visited set equal to reduction-off.
    pub reduction: bool,
    /// Branch points per run that offer alternatives.
    pub max_depth: usize,
    /// Induced message drops per run.
    pub max_drops: u32,
    /// Explorer-injected fail-stop crashes per run.  When non-zero, every
    /// branch point additionally offers `Step::Crash` of each still-alive
    /// member — crash options are appended *after* fire/drop options, so a
    /// zero budget leaves legacy choice indices (and committed fixtures)
    /// untouched.
    pub max_crashes: u32,
    /// Explorer-injected (possibly false) suspicions per run.  When
    /// non-zero, every branch point additionally offers `Step::Suspect` of
    /// each ordered pair of distinct alive members — appended after the
    /// crash options, so zero budgets of either kind leave earlier choice
    /// indices untouched.
    pub max_suspects: u32,
    /// Judge terminal (non-halted) states with the quiescence oracle: a
    /// run that ends with a member still holding
    /// [`pending_work`](horus_core::stack::Stack::pending_work) after the
    /// horizon's grace is reported as a `quiescence` violation — the
    /// bounded-model-checking twin of the soak runner's progress watchdog.
    /// Off by default: scenarios whose point is a legitimately wedged
    /// shape (and the fixtures pinning them) stay clean.
    pub wedge_oracle: bool,
    /// Global distinct-fingerprint budget.
    pub max_states: u64,
    /// Global executed-run budget.
    pub max_runs: u64,
    /// Serve fingerprints from the world's incremental caches.  Off means
    /// every branch point re-digests every stack and the whole calendar from
    /// scratch ([`SimWorld::fingerprint_fresh`]) — the honest pre-cache
    /// baseline the E25 benchmark arm measures against.  The two paths are
    /// bit-identical, so coverage is unaffected either way.
    pub incremental_fp: bool,
    /// Resume sibling runs from world snapshots taken at their branch
    /// points instead of re-executing the settle phase and choice prefix
    /// from scratch.  Falls back to stateless replay per-branch when a
    /// layer does not support snapshotting.  The explored tree, the visited
    /// states, and the verdict are identical either way (the equivalence
    /// test holds them equal); only `steps` — events actually executed —
    /// shrinks, which is the point.
    pub snapshot_resume: bool,
    /// Share layer state copy-on-write between a branch-point world and its
    /// parked sibling snapshots ([`SimWorld::snapshot`]); off pays a full
    /// deep clone per sibling ([`SimWorld::snapshot_deep`]) — the honest
    /// pre-CoW baseline the E27 `cow_off` benchmark arm measures against.
    /// Either way the snapshot is behaviourally exact, so coverage and
    /// verdicts are unaffected; only clone work (and with it the feasible
    /// depth) changes.
    pub cow_snapshots: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            window: Duration::from_micros(100),
            reduction: true,
            max_depth: 6,
            max_drops: 0,
            max_crashes: 0,
            max_suspects: 0,
            wedge_oracle: false,
            max_states: 200_000,
            max_runs: 20_000,
            incremental_fp: true,
            snapshot_resume: true,
            cow_snapshots: true,
        }
    }
}

/// One DFS node: how to bring a world to the state where its next choice
/// diverges.
enum Job {
    /// Build the scenario world and replay this choice prefix from scratch.
    /// The sleep set (events earlier siblings of the final branch point
    /// already cover) activates when the last prefix choice is consumed.
    Fresh(Vec<u16>, Vec<SleepEntry>),
    /// Resume from a snapshot taken at the diverging branch point.
    Resume(Box<ResumeJob>),
}

/// A snapshot-resume DFS node (boxed: a `SimWorld` is large next to a
/// prefix vector).
struct ResumeJob {
    /// The world as it stood at the branch point, *before* any option ran.
    world: SimWorld,
    /// Full from-scratch choice path; the last entry is the sibling option
    /// to take at the resumed branch point.  Kept complete so violation
    /// reports and shrinking always carry schedules replayable by
    /// [`replay_choices`].
    choices: Vec<u16>,
    /// Option counts of the branch points already on the path (depth
    /// accounting continues from the parent run).
    branch_base: Vec<u16>,
    /// Drop budget remaining at the branch point.
    drops_left: u32,
    /// Crash budget remaining at the branch point.
    crashes_left: u32,
    /// Suspicion budget remaining at the branch point.
    suspects_left: u32,
    /// Sleep set to activate when the sibling choice is consumed: the
    /// parent's sleeping events plus the fire events of the awake siblings
    /// explored before this one.
    sleep: Vec<SleepEntry>,
}

/// A violation the explorer found, with the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Which oracle failed.
    pub oracle: &'static str,
    /// The oracle's first complaint.
    pub message: String,
    /// Choice list reaching the violation (replayable).
    pub choices: Vec<u16>,
}

/// What one re-execution observed.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Choice taken at each branch point, in order.
    pub taken: Vec<u16>,
    /// Option count at each branch point *eligible for expansion* (within
    /// `max_depth`); parallel prefix of `taken`.
    pub branch_options: Vec<u16>,
    /// Events fired during the explored window.
    pub steps: u64,
    /// Violation observed (at a view change or at the terminal), if any.
    pub violation: Option<FoundViolation>,
    /// Whether the run was cut by visited-state pruning.
    pub pruned: bool,
}

/// Aggregate exploration result.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Runs executed.
    pub runs: u64,
    /// Distinct fingerprints recorded.
    pub states: u64,
    /// Events fired across all runs.
    pub steps: u64,
    /// Branch points expanded.
    pub branch_points: u64,
    /// Runs cut by visited-state pruning.
    pub pruned: u64,
    /// True when the frontier drained within the budgets — the bounded
    /// space is exhausted.
    pub exhausted: bool,
    /// First violation found, if any (search stops on it).
    pub violation: Option<FoundViolation>,
}

/// The scheduler that turns a choice list into a schedule.
///
/// At each step it enumerates the deterministic option list for the current
/// ready set; when more than one option exists it is a *branch point* and
/// the next choice (or 0 past the end of the list) selects.  Because option
/// enumeration is a pure function of the world and the config, the same
/// choices replay the same run, byte for byte.
struct ControlledScheduler<'a> {
    cfg: &'a CheckConfig,
    oracles: &'a [Oracle],
    scenario: &'a Scenario,
    choices: &'a [u16],
    cursor: usize,
    drops_left: u32,
    crashes_left: u32,
    suspects_left: u32,
    rec: RunRecord,
    /// Sleeping events: postponed in this subtree because an earlier
    /// sibling of an ancestor branch point explores every schedule that
    /// fires them first.  Woken (removed) by any dependent step.  Always
    /// empty with the reduction off, and during committed-schedule replay.
    sleep: Vec<SleepEntry>,
    /// Sleep set handed to this job by its spawner; installs into `sleep`
    /// at the moment the final prefix choice is consumed — i.e. exactly at
    /// the branch point the job diverges from its parent, whether the run
    /// resumed there from a snapshot or replayed its way back.
    armed_sleep: Vec<SleepEntry>,
    /// Shared visited-fingerprint map; `None` disables pruning (replay).
    visited: Option<&'a mut Visited>,
    /// DFS frontier to push untaken siblings onto as branch points are
    /// encountered; `None` disables expansion (replay).
    spawn: Option<&'a mut Vec<Job>>,
    state_budget_hit: bool,
    /// Per-member upcall counts at the last view scan; only upcalls
    /// appended past these cursors are examined, so watching for view
    /// installs costs O(new upcalls) per step instead of O(all upcalls).
    upcalls_seen: Vec<usize>,
    /// Reused option buffer — `next_step` runs for every event, so the
    /// option list must not cost an allocation per step.
    opts_buf: Vec<Step>,
}

impl<'a> ControlledScheduler<'a> {
    /// Fills `opts` with the deterministic option list for the ready set.
    /// Taken out of `self` (callers `mem::take` the buffer) so the borrow
    /// of the option list stays disjoint from the scheduler's other fields.
    /// The list is *never* filtered by the reduction: sleep sets postpone
    /// whole sibling runs instead of hiding options, so enumeration — and
    /// with it every committed fixture's choice indices — is identical with
    /// the reduction on or off.
    fn fill_options(&self, world: &SimWorld, ready: &[ReadyEvent], opts: &mut Vec<Step>) {
        enumerate_options(
            self.scenario.members,
            world,
            ready,
            self.drops_left,
            self.crashes_left,
            self.suspects_left,
            opts,
        );
    }

    /// Whether an option is asleep: a `Fire` of a currently-sleeping event.
    /// Drops, crashes and suspicions never sleep (they are induced faults,
    /// not reorderable deliveries — postponing them saves nothing and the
    /// independence theory does not cover them).
    fn is_asleep(&self, ready: &[ReadyEvent], step: Step) -> bool {
        match step {
            Step::Fire(i) => self.sleep.iter().any(|e| e.id == ready[i].id),
            _ => false,
        }
    }

    /// Applies the wake rules for the step about to execute: a fire wakes
    /// every sleeping event dependent on it, a drop retires the dropped
    /// event's entry (it can never fire now), and induced crashes or
    /// suspicions — which commute with nothing — wake everything.
    fn wake_for(&mut self, world: &SimWorld, ready: &[ReadyEvent], step: Step) {
        if self.sleep.is_empty() {
            return;
        }
        match step {
            Step::Fire(i) => {
                let f = ready[i];
                let now = world.now();
                self.sleep.retain(|e| independent(world, now, e, &f));
            }
            Step::Drop(i) => {
                let id = ready[i].id;
                self.sleep.retain(|e| e.id != id);
            }
            Step::Crash(_) | Step::Suspect { .. } => self.sleep.clear(),
            Step::Halt => {}
        }
    }

    /// Advances the per-member upcall cursors; true when any upcall appended
    /// since the last scan installed a view.
    fn saw_new_view(&mut self, world: &SimWorld) -> bool {
        let mut saw = false;
        for m in 1..=self.scenario.members {
            let ups = world.upcalls(EndpointAddr::new(m));
            let seen = &mut self.upcalls_seen[m as usize - 1];
            *seen = (*seen).min(ups.len());
            saw |= ups[*seen..].iter().any(|(_, up)| matches!(up, Up::View(_)));
            *seen = ups.len();
        }
        saw
    }

    fn check_oracles(&mut self, world: &SimWorld) -> bool {
        match first_violation(self.scenario, self.oracles, world, &self.rec.taken) {
            Some(v) => {
                self.rec.violation = Some(v);
                true
            }
            None => false,
        }
    }
}

/// Runs every oracle over the world's delivery logs; the first complaint
/// becomes a [`FoundViolation`] carrying the choices that reached it.
fn first_violation(
    scenario: &Scenario,
    oracles: &[Oracle],
    world: &SimWorld,
    taken: &[u16],
) -> Option<FoundViolation> {
    let logs = scenario.logs(world);
    for oracle in oracles {
        if let Some(v) = oracle.check(&logs).first() {
            return Some(FoundViolation {
                oracle: oracle.name(),
                message: v.to_string(),
                choices: taken.to_vec(),
            });
        }
    }
    None
}

impl Scheduler for ControlledScheduler<'_> {
    fn next_step(&mut self, world: &SimWorld, ready: &[ReadyEvent]) -> Step {
        // Oracle check whenever a view installed since the last look — a
        // violation visible mid-run should be caught (and attributed) at the
        // earliest branch, not only at the horizon.
        if self.saw_new_view(world) && self.check_oracles(world) {
            return Step::Halt;
        }
        // The dirty-marking invariant, policed in debug builds: the cached
        // and the from-scratch fingerprint must agree at every step — which
        // turns every debug replay of a committed fixture into a
        // differential test of the incremental caches.
        debug_assert_eq!(
            world.fingerprint(),
            world.fingerprint_fresh(),
            "incremental fingerprint diverged from fresh recomputation (missed dirty mark?)"
        );

        // Past the replayed prefix, consult the visited set at *every* step,
        // not just at branch points: an already-seen fingerprint means the
        // continuation from here was (or will be) explored from the run that
        // first reached it — that run kept executing and recorded every
        // branch point downstream, so sibling expansion covers this subtree.
        // Per-step granularity is what the incremental fingerprint buys:
        // the check costs O(one dirty slot), not a full state walk, and it
        // cuts redundant runs hundreds of steps before the next branch
        // point would.  (Within the prefix the states were necessarily seen
        // — that is what replaying is — so pruning there would cut every
        // run.)
        let beyond_prefix = self.cursor >= self.choices.len();
        if beyond_prefix {
            if let Some(visited) = self.visited.as_deref_mut() {
                if visited.len() >= self.cfg.max_states {
                    self.state_budget_hit = true;
                    return Step::Halt;
                }
                let fp = if self.cfg.incremental_fp {
                    world.fingerprint()
                } else {
                    world.fingerprint_fresh()
                };
                let key = sleep_key(world.now(), &self.sleep);
                if !visited.check_insert(fp, &key) {
                    self.rec.pruned = true;
                    return Step::Halt;
                }
            }
        }

        let mut opts = std::mem::take(&mut self.opts_buf);
        self.fill_options(world, ready, &mut opts);
        if opts.len() <= 1 {
            self.rec.steps += 1;
            let step = opts.first().copied().unwrap_or(Step::Fire(0));
            self.wake_for(world, ready, step);
            self.opts_buf = opts;
            return step;
        }

        // A real branch point.
        let expandable = self.rec.branch_options.len() < self.cfg.max_depth;
        if !expandable {
            // Past the depth bound the run is deterministic and spawns
            // nothing, so sleeping buys nothing — and clearing keeps the
            // deep continuation (choice, visited keys) identical to
            // reduction-off, which the differential set-equality relies on.
            self.sleep.clear();
        }

        // The taken option: the prefix dictates it during replay; beyond
        // the prefix the run takes the first *awake* option — under DPOR an
        // asleep option's orderings are exactly what an earlier sibling
        // explores, so taking one here would re-explore a covered subtree.
        let choice = if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            usize::from(c).min(opts.len() - 1)
        } else {
            match opts.iter().position(|&s| !self.is_asleep(ready, s)) {
                Some(first_awake) => first_awake,
                None => {
                    // Every option is covered by an earlier sibling: this
                    // whole continuation is redundant — the reduction's
                    // savings, booked as a prune.
                    self.rec.pruned = true;
                    self.opts_buf = opts;
                    return Step::Halt;
                }
            }
        };

        // Expansion happens *here*, while the branch point's world exists:
        // each untaken *awake* sibling becomes a DFS node, preferably a
        // snapshot of this world (so the sibling run resumes in place) and
        // otherwise a full replay prefix.  Only beyond the replayed prefix
        // — the resumed branch point's own siblings were pushed by the run
        // that discovered it.  Each sibling inherits the current sleep set
        // plus the fire events of its awake left siblings (the taken option
        // included): those orderings are explored to its left, so in its
        // subtree they stay postponed until a dependent step wakes them.
        // Asleep options spawn nothing — that is the run reduction.
        if expandable && beyond_prefix {
            let asleep: Vec<bool> = opts.iter().map(|&s| self.is_asleep(ready, s)).collect();
            if let Some(spawn) = self.spawn.as_deref_mut() {
                let mut acc = self.sleep.clone();
                if self.cfg.reduction {
                    if let Step::Fire(i) = opts[choice] {
                        acc.extend(sleep_entry(world, &ready[i]));
                    }
                }
                for alt in (choice + 1)..opts.len() {
                    if asleep[alt] {
                        continue;
                    }
                    let mut choices = self.rec.taken.clone();
                    choices.push(alt as u16);
                    let snap = if self.cfg.snapshot_resume {
                        if self.cfg.cow_snapshots {
                            world.snapshot()
                        } else {
                            world.snapshot_deep()
                        }
                    } else {
                        None
                    };
                    spawn.push(match snap {
                        Some(w) => Job::Resume(Box::new(ResumeJob {
                            world: w,
                            choices,
                            branch_base: self.rec.branch_options.clone(),
                            drops_left: self.drops_left,
                            crashes_left: self.crashes_left,
                            suspects_left: self.suspects_left,
                            sleep: acc.clone(),
                        })),
                        None => Job::Fresh(choices, acc.clone()),
                    });
                    if self.cfg.reduction {
                        if let Step::Fire(i) = opts[alt] {
                            acc.extend(sleep_entry(world, &ready[i]));
                        }
                    }
                }
            }
        }

        // Consuming the final prefix choice is the moment this job diverges
        // from its parent: its armed sleep set activates now, *before* the
        // wake rules run for the diverging step itself — the step's own
        // dependencies do the filtering the spawner deferred.
        if self.cursor + 1 == self.choices.len() {
            self.sleep = std::mem::take(&mut self.armed_sleep);
        }
        self.cursor += 1;
        self.rec.taken.push(choice as u16);
        if expandable {
            self.rec.branch_options.push(opts.len() as u16);
        }
        let step = opts[choice];
        self.wake_for(world, ready, step);
        self.opts_buf = opts;
        match step {
            Step::Drop(_) => self.drops_left -= 1,
            Step::Crash(_) => self.crashes_left -= 1,
            Step::Suspect { .. } => self.suspects_left -= 1,
            _ => {}
        }
        self.rec.steps += 1;
        step
    }
}

/// Executes one DFS node: a fresh build-and-replay, or a resume from a
/// branch-point snapshot.  `visited` enables cross-run pruning; `spawn`
/// receives the untaken siblings of every expandable branch point
/// encountered past the node's prefix.
fn run_job(
    scenario: &Scenario,
    cfg: &CheckConfig,
    job: Job,
    visited: Option<&mut Visited>,
    spawn: Option<&mut Vec<Job>>,
) -> RunRecord {
    run_job_inner(scenario, cfg, job, visited, spawn, None)
}

fn run_job_inner(
    scenario: &Scenario,
    cfg: &CheckConfig,
    job: Job,
    visited: Option<&mut Visited>,
    spawn: Option<&mut Vec<Job>>,
    tracer: Option<Arc<dyn TraceSink>>,
) -> RunRecord {
    let (
        mut world,
        choices,
        taken,
        branch_base,
        cursor,
        drops_left,
        crashes_left,
        suspects_left,
        armed_sleep,
    ) = match job {
        Job::Fresh(prefix, sleep) => (
            scenario.build(),
            prefix,
            Vec::new(),
            Vec::new(),
            0,
            cfg.max_drops,
            cfg.max_crashes,
            cfg.max_suspects,
            sleep,
        ),
        Job::Resume(r) => {
            // The resumed run starts at its branch point with the path
            // up to (but not including) the sibling choice already
            // "taken"; the first `next_step` consumes that last choice
            // exactly as a stateless replay's final prefix step would.
            let cursor = r.choices.len() - 1;
            let taken = r.choices[..cursor].to_vec();
            (
                r.world,
                r.choices,
                taken,
                r.branch_base,
                cursor,
                r.drops_left,
                r.crashes_left,
                r.suspects_left,
                r.sleep,
            )
        }
    };
    // Tracing starts *here* — after `Scenario::build` ran the settle phase —
    // so a captured trace holds exactly the explored window, which is what
    // the trace→schedule bridge maps back onto choice indices.
    if let Some(t) = tracer {
        world.set_tracer(t);
    }
    let mut ctl = ControlledScheduler {
        cfg,
        oracles: scenario.oracles,
        scenario,
        choices: &choices,
        cursor,
        drops_left,
        crashes_left,
        suspects_left,
        rec: RunRecord {
            taken,
            branch_options: branch_base,
            steps: 0,
            violation: None,
            pruned: false,
        },
        sleep: Vec::new(),
        armed_sleep,
        visited,
        spawn,
        state_budget_hit: false,
        upcalls_seen: Vec::new(),
        opts_buf: Vec::new(),
    };
    // Prime the view-watch cursors past whatever the settle phase (or the
    // snapshotted prefix) already delivered: those views were judged by the
    // run that produced them.
    ctl.upcalls_seen =
        (1..=scenario.members).map(|m| world.upcalls(EndpointAddr::new(m)).len()).collect();
    let outcome = world.run_scheduled(&mut ctl, cfg.window, scenario.deadline());
    let mut rec = ctl.rec;
    // Terminal oracle pass: quiescence and horizon are where agreement
    // properties are fully judgeable.  Skip it for halted runs — a halt is
    // either an oracle hit (violation already recorded) or a prune/budget
    // cut, whose continuation is judged from the identical state elsewhere.
    if rec.violation.is_none() && outcome != RunOutcome::Halted {
        rec.violation = first_violation(scenario, scenario.oracles, &world, &rec.taken);
    }
    if rec.violation.is_none() && outcome != RunOutcome::Halted && cfg.wedge_oracle {
        rec.violation = wedge_violation(scenario, &world, &rec.taken);
    }
    rec
}

/// The quiescence oracle: at a terminal state, no live member may still be
/// holding pending protocol work — retransmission queues, unfinished flush
/// rounds, reassembly gaps.  A member that does is wedged: the horizon gave
/// every retry/timeout path time to drain, so leftover work means no
/// schedule continuation can make progress (the "no progress possible"
/// verdict the soak runner's watchdog reaches statistically, judged here at
/// the end of a systematically explored schedule).
fn wedge_violation(scenario: &Scenario, world: &SimWorld, taken: &[u16]) -> Option<FoundViolation> {
    let mut wedged: Vec<String> = Vec::new();
    for m in (1..=scenario.members).map(EndpointAddr::new) {
        if !world.is_alive(m) {
            continue;
        }
        let Some(stack) = world.stack(m) else { continue };
        let pending = stack.pending_work();
        if pending > 0 {
            wedged.push(format!("{m} still holds {pending} unit(s) of pending work"));
        }
    }
    if wedged.is_empty() {
        return None;
    }
    Some(FoundViolation {
        oracle: "quiescence",
        message: format!("wedged at the horizon: {}", wedged.join("; ")),
        choices: taken.to_vec(),
    })
}

/// Re-executes the scenario under `choices` from scratch, calendar order
/// past the end.  `visited` enables cross-run pruning; pass `None` to
/// replay a schedule in full.
pub fn run_one(
    scenario: &Scenario,
    choices: &[u16],
    cfg: &CheckConfig,
    visited: Option<&mut Visited>,
) -> RunRecord {
    run_job(scenario, cfg, Job::Fresh(choices.to_vec(), Vec::new()), visited, None)
}

/// Replays a choice list with pruning disabled (the verdict-stable path used
/// by `horus-check replay` and the committed fixtures).
pub fn replay_choices(scenario: &Scenario, choices: &[u16], cfg: &CheckConfig) -> RunRecord {
    run_one(scenario, choices, cfg, None)
}

/// [`replay_choices`] with a trace sink installed for the explored window:
/// the settle phase runs silent, then every calendar fire, induced fault,
/// and stack-internal hop of the replayed run is recorded.  The captured
/// trace carries the calendar sequence numbers the trace→schedule bridge
/// matches on, so `replay → trace → bridge → replay` round-trips.
pub fn replay_choices_traced(
    scenario: &Scenario,
    choices: &[u16],
    cfg: &CheckConfig,
    tracer: Arc<dyn TraceSink>,
) -> RunRecord {
    run_job_inner(scenario, cfg, Job::Fresh(choices.to_vec(), Vec::new()), None, None, Some(tracer))
}

/// Explores the scenario's bounded schedule space depth-first.  Stops at the
/// first violation (callers shrink it), or when the frontier drains
/// (`exhausted`), or when a budget runs out.
pub fn explore(scenario: &Scenario, cfg: &CheckConfig) -> CheckReport {
    let mut visited = Visited::default();
    explore_with(scenario, cfg, &mut visited)
}

/// [`explore`] that also hands back the visited-fingerprint set — the raw
/// material of the DPOR differential suite, which holds the reduced
/// exploration's coverage equal to `--no-reduction`'s state for state.
pub fn explore_collect(scenario: &Scenario, cfg: &CheckConfig) -> (CheckReport, FpSet) {
    let mut visited = Visited::default();
    let report = explore_with(scenario, cfg, &mut visited);
    (report, visited.fingerprints().collect())
}

fn explore_with(scenario: &Scenario, cfg: &CheckConfig, visited: &mut Visited) -> CheckReport {
    let mut report = CheckReport {
        scenario: scenario.name,
        runs: 0,
        states: 0,
        steps: 0,
        branch_points: 0,
        pruned: 0,
        exhausted: false,
        violation: None,
    };
    let mut frontier: Vec<Job> = vec![Job::Fresh(Vec::new(), Vec::new())];
    while let Some(job) = frontier.pop() {
        if report.runs >= cfg.max_runs || visited.len() >= cfg.max_states {
            return report;
        }
        // Untaken siblings of every expandable branch point past the node's
        // prefix are pushed onto `frontier` *during* the run, while each
        // branch point's world is live and can be snapshotted.
        let rec = run_job(scenario, cfg, job, Some(&mut *visited), Some(&mut frontier));
        report.runs += 1;
        report.steps += rec.steps;
        report.branch_points += rec.branch_options.len() as u64;
        if rec.pruned {
            report.pruned += 1;
        }
        report.states = visited.len();
        if let Some(v) = rec.violation {
            report.violation = Some(v);
            return report;
        }
    }
    report.exhausted = true;
    report
}

/// What one parallel subtree task observed.
struct TaskOutcome {
    runs: u64,
    states: u64,
    steps: u64,
    branch_points: u64,
    pruned: u64,
    exhausted: bool,
    violation: Option<FoundViolation>,
}

/// Sequential DFS over the subtree rooted at `seed`, with a task-private
/// visited set.  Budgets are enforced against the *shared* counters so the
/// whole exploration respects `max_runs`/`max_states`, but pruning never
/// crosses task boundaries — which is what makes the set of runs a task
/// executes a pure function of its seed, independent of worker count or
/// timing (as long as no shared budget binds).
fn explore_task(
    scenario: &Scenario,
    cfg: &CheckConfig,
    seed: Job,
    shared_runs: &AtomicU64,
    shared_states: &AtomicU64,
) -> TaskOutcome {
    let mut out = TaskOutcome {
        runs: 0,
        states: 0,
        steps: 0,
        branch_points: 0,
        pruned: 0,
        exhausted: false,
        violation: None,
    };
    let mut visited = Visited::default();
    let mut frontier: Vec<Job> = vec![seed];
    while let Some(job) = frontier.pop() {
        if shared_runs.load(Ordering::Relaxed) >= cfg.max_runs
            || shared_states.load(Ordering::Relaxed) >= cfg.max_states
        {
            return out;
        }
        let states_before = visited.len();
        let rec = run_job(scenario, cfg, job, Some(&mut visited), Some(&mut frontier));
        out.runs += 1;
        out.steps += rec.steps;
        out.branch_points += rec.branch_options.len() as u64;
        if rec.pruned {
            out.pruned += 1;
        }
        out.states = visited.len();
        shared_runs.fetch_add(1, Ordering::Relaxed);
        shared_states.fetch_add(visited.len() - states_before, Ordering::Relaxed);
        if let Some(v) = rec.violation {
            out.violation = Some(v);
            return out;
        }
    }
    out.exhausted = true;
    out
}

/// [`explore`] with the DFS frontier sharded across `workers` OS threads.
///
/// The root (empty-prefix) run executes first; each untaken sibling of its
/// branch points seeds an independent *task* — a choice-prefix subtree
/// explored sequentially with a task-private visited set.  Tasks are dealt
/// to workers round-robin by index, so the partition is a pure function of
/// the task list, not of thread timing.  Per-task visited sets trade some
/// cross-subtree pruning for a determinism guarantee: as long as no global
/// budget binds, `runs`, `states`, `steps` and the reported violation are
/// identical for every worker count (the determinism test holds
/// `--workers 1` against `--workers 4`).  A task that finds a violation
/// stops *itself* — other tasks still run to completion, and the report
/// carries the violation with the lexicographically-least choice prefix,
/// again independent of timing.
///
/// `states` is the sum of per-task distinct fingerprints; states discovered
/// by several tasks count once per task.
pub fn explore_parallel(scenario: &Scenario, cfg: &CheckConfig, workers: usize) -> CheckReport {
    let workers = workers.max(1);
    let mut report = CheckReport {
        scenario: scenario.name,
        runs: 0,
        states: 0,
        steps: 0,
        branch_points: 0,
        pruned: 0,
        exhausted: false,
        violation: None,
    };
    let shared_runs = AtomicU64::new(0);
    let shared_states = AtomicU64::new(0);

    // Root run: seeds the task list (one job per untaken sibling of its
    // branch points, snapshots included), and catches calendar-order
    // violations before any thread spawns.
    let mut root_visited = Visited::default();
    let mut tasks: Vec<Job> = Vec::new();
    let root = run_job(
        scenario,
        cfg,
        Job::Fresh(Vec::new(), Vec::new()),
        Some(&mut root_visited),
        Some(&mut tasks),
    );
    report.runs = 1;
    report.steps = root.steps;
    report.branch_points = root.branch_options.len() as u64;
    report.pruned = u64::from(root.pruned);
    report.states = root_visited.len();
    shared_runs.store(1, Ordering::Relaxed);
    shared_states.store(report.states, Ordering::Relaxed);
    if let Some(v) = root.violation {
        report.violation = Some(v);
        return report;
    }

    let outcomes: Vec<TaskOutcome> = std::thread::scope(|s| {
        // Deal tasks round-robin by index: worker w takes tasks w, w+N, ...
        // Collected up front so each spawned worker owns its jobs (a job
        // may hold a world snapshot — moved, never shared).
        let mut dealt: Vec<Vec<Job>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            dealt[i % workers].push(t);
        }
        let handles: Vec<_> = dealt
            .into_iter()
            .map(|my_tasks| {
                let (shared_runs, shared_states) = (&shared_runs, &shared_states);
                s.spawn(move || {
                    my_tasks
                        .into_iter()
                        .map(|t| explore_task(scenario, cfg, t, shared_runs, shared_states))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut exhausted = true;
    for o in &outcomes {
        report.runs += o.runs;
        report.states += o.states;
        report.steps += o.steps;
        report.branch_points += o.branch_points;
        report.pruned += o.pruned;
        exhausted &= o.exhausted;
    }
    report.violation =
        outcomes.into_iter().filter_map(|o| o.violation).min_by(|a, b| a.choices.cmp(&b.choices));
    report.exhausted = exhausted && report.violation.is_none();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tiny_cfg() -> CheckConfig {
        CheckConfig { max_depth: 3, max_states: 5_000, max_runs: 500, ..CheckConfig::default() }
    }

    #[test]
    fn fifo2_calendar_order_is_clean() {
        let s = Scenario::by_name("fifo2").unwrap();
        let rec = replay_choices(s, &[], &tiny_cfg());
        assert!(rec.violation.is_none(), "default schedule should satisfy FIFO");
    }

    #[test]
    fn fifo2_explorer_finds_the_planted_bug() {
        let s = Scenario::by_name("fifo2").unwrap();
        let report = explore(s, &tiny_cfg());
        let v = report.violation.expect("explorer must find the FIFO violation");
        assert_eq!(v.oracle, "fifo");
        // And the counterexample replays to the same verdict.
        let rec = replay_choices(s, &v.choices, &tiny_cfg());
        let rv = rec.violation.expect("counterexample must replay");
        assert_eq!(rv.message, v.message);
    }

    #[test]
    fn zero_crash_budget_leaves_option_indices_untouched() {
        // Committed fixtures rely on choice indices; a zero crash budget
        // must enumerate exactly the legacy options.
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        assert_eq!(cfg.max_crashes, 0);
        let a = replay_choices(s, &[1], &cfg);
        let b = replay_choices(s, &[1], &CheckConfig { max_crashes: 0, ..cfg.clone() });
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.branch_options, b.branch_options);
    }

    #[test]
    fn crash_budget_widens_branch_points_and_bug_is_still_found() {
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = CheckConfig { max_crashes: 1, ..tiny_cfg() };
        // Every branch point now offers the legacy options plus one crash
        // per alive member.
        let plain = replay_choices(s, &[], &tiny_cfg());
        let wide = replay_choices(s, &[], &cfg);
        assert!(
            wide.branch_options.first().unwrap() > plain.branch_options.first().unwrap_or(&1),
            "crash options must widen the first branch point ({:?} vs {:?})",
            wide.branch_options,
            plain.branch_options
        );
        // The planted FIFO bug lives on a crash-free path, so it must
        // survive the widened space.
        let report = explore(s, &cfg);
        assert_eq!(report.violation.expect("still found").oracle, "fifo");
    }

    #[test]
    fn crash_choice_actually_crashes_a_member() {
        // Steering the run into the *last* option of the first branch point
        // (choices clamp) selects the crash of the highest-numbered alive
        // member — ep:2, fifo2's only remote receiver.
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = CheckConfig { max_crashes: 1, ..tiny_cfg() };
        let legacy = replay_choices(s, &[], &tiny_cfg());
        let rec = replay_choices(s, &[u16::MAX], &cfg);
        let first_opts = *rec.branch_options.first().expect("a branch point");
        assert_eq!(rec.taken[0], first_opts - 1, "choice clamps to the last option");
        assert!(
            first_opts > legacy.branch_options.first().copied().unwrap_or(1),
            "the last option lies in the appended crash range"
        );
        // With the receiver dead there is no delivery pair left to misorder,
        // so this path is clean even though the space holds a planted bug.
        assert!(rec.violation.is_none(), "got {:?}", rec.violation);
    }

    #[test]
    fn zero_suspect_budget_leaves_option_indices_untouched() {
        // Same contract as the crash budget: committed fixtures rely on
        // choice indices, so a zero suspect budget must enumerate exactly
        // the legacy options.
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        assert_eq!(cfg.max_suspects, 0);
        let a = replay_choices(s, &[1], &cfg);
        let b = replay_choices(s, &[1], &CheckConfig { max_suspects: 0, ..cfg.clone() });
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.branch_options, b.branch_options);
    }

    #[test]
    fn suspect_budget_widens_branch_points_by_ordered_pairs() {
        // Three alive members → six ordered (observer, target) pairs
        // appended after the fire/drop/crash ranges at every branch point.
        let s = Scenario::by_name("wedge").unwrap();
        let cfg = CheckConfig { max_depth: 6, ..CheckConfig::default() };
        let plain = replay_choices(s, &[], &cfg);
        let wide = replay_choices(s, &[], &CheckConfig { max_suspects: 1, ..cfg.clone() });
        let p0 = *plain.branch_options.first().expect("a branch point");
        let w0 = *wide.branch_options.first().expect("a branch point");
        assert_eq!(w0, p0 + 6, "suspect block must add members*(members-1) options");
    }

    #[test]
    fn suspect_choice_spends_the_budget_and_stays_clean() {
        // Index p0+2 lands on Suspect{observer: ep:2, target: ep:1} — the
        // false suspicion that wedges the trio into {a} / {b, c}.  Virtual
        // synchrony holds within the components, and after a full horizon
        // every retry path has drained, so even the quiescence oracle is
        // silent: wedged *membership* is a liveness debate, wedged *work*
        // is what the oracle indicts.
        let s = Scenario::by_name("wedge").unwrap();
        let cfg = CheckConfig { max_depth: 6, ..CheckConfig::default() };
        let plain = replay_choices(s, &[], &cfg);
        let idx = plain.branch_options.first().copied().unwrap_or(1) + 2;
        let rec = replay_choices(
            s,
            &[idx],
            &CheckConfig { max_suspects: 1, wedge_oracle: true, max_depth: 6, ..cfg.clone() },
        );
        assert_eq!(rec.taken.first(), Some(&idx), "the suspect option must be selectable");
        assert!(rec.violation.is_none(), "got {:?}", rec.violation);
        // The budget is 1: later branch points are back to the legacy width
        // plus nothing — no second suspicion on this path.
        let follow =
            replay_choices(s, &[idx, u16::MAX], &CheckConfig { max_suspects: 1, ..cfg.clone() });
        assert!(follow.violation.is_none());
    }

    #[test]
    fn wedge_oracle_indicts_leftover_pending_work() {
        // A cast handed down but never scheduled leaves retransmission
        // state in the stack — exactly the "no continuation can drain
        // this" terminal the oracle exists for.
        let s = Scenario::by_name("wedge").unwrap();
        let mut w = s.build();
        let base = horus_core::prelude::SimTime::ZERO + s.settle;
        let quiet = wedge_violation(s, &w, &[]);
        // Settled world: every flush finished, nothing owed — silent.
        assert!(quiet.is_none(), "got {quiet:?}");
        // Inject a suspicion and stop the clock right after the exclusion
        // flush starts: the observer is parked in Phase::Flushing with the
        // round unfinished — owed view-change work the horizon never gave
        // time to drain.
        w.suspect_at(
            base + std::time::Duration::from_millis(1),
            EndpointAddr::new(2),
            EndpointAddr::new(1),
        );
        let mut cal = horus_sim::CalendarScheduler;
        w.run_scheduled(
            &mut cal,
            std::time::Duration::ZERO,
            base + std::time::Duration::from_micros(1050),
        );
        let v = wedge_violation(s, &w, &[7]).expect("pending work must be indicted");
        assert_eq!(v.oracle, "quiescence");
        assert!(v.message.contains("pending work"), "got {}", v.message);
        assert_eq!(v.choices, vec![7]);
    }

    #[test]
    fn parallel_report_is_worker_count_independent() {
        // The determinism contract: per-task visited sets and round-robin
        // task dealing make the report a pure function of the scenario and
        // config — 1 worker and 4 must agree on everything, including the
        // (lex-least) counterexample.
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        let one = explore_parallel(s, &cfg, 1);
        let four = explore_parallel(s, &cfg, 4);
        assert_eq!(one.runs, four.runs);
        assert_eq!(one.states, four.states);
        assert_eq!(one.steps, four.steps);
        assert_eq!(one.branch_points, four.branch_points);
        assert_eq!(one.exhausted, four.exhausted);
        let (va, vb) = (one.violation.expect("found"), four.violation.expect("found"));
        assert_eq!(va.choices, vb.choices);
        assert_eq!(va.oracle, vb.oracle);
        assert_eq!(va.message, vb.message);
    }

    #[test]
    fn fresh_fingerprints_explore_the_same_space() {
        // incremental_fp only changes *how* fingerprints are computed, never
        // their values — coverage must be identical.
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        let inc = explore(s, &cfg);
        let fresh = explore(s, &CheckConfig { incremental_fp: false, ..cfg });
        assert_eq!(inc.runs, fresh.runs);
        assert_eq!(inc.states, fresh.states);
        assert_eq!(inc.violation.map(|v| v.choices), fresh.violation.map(|v| v.choices));
    }

    #[test]
    fn snapshot_resume_explores_the_same_space() {
        // Snapshot-resume only changes *how* a branch sibling is reached
        // (cloned world vs rebuild-and-replay), never which runs exist or
        // what they conclude.  Only `steps` may differ: resumed runs count
        // just their suffix.
        for name in ["fifo2", "flush3"] {
            let s = Scenario::by_name(name).unwrap();
            let cfg = tiny_cfg();
            let snap = explore(s, &cfg);
            let fresh = explore(s, &CheckConfig { snapshot_resume: false, ..cfg });
            assert_eq!(snap.runs, fresh.runs, "{name}: run set diverged");
            assert_eq!(snap.states, fresh.states, "{name}: state set diverged");
            assert_eq!(snap.branch_points, fresh.branch_points, "{name}");
            assert_eq!(snap.exhausted, fresh.exhausted, "{name}");
            assert_eq!(
                snap.violation.map(|v| (v.oracle, v.choices)),
                fresh.violation.map(|v| (v.oracle, v.choices)),
                "{name}: verdict diverged"
            );
            assert!(
                snap.steps <= fresh.steps,
                "{name}: resumed runs must not re-execute prefixes ({} vs {})",
                snap.steps,
                fresh.steps
            );
        }
    }

    #[test]
    fn snapshot_matches_live_world_step_for_step() {
        // A snapshot taken mid-run must be indistinguishable from the live
        // world: drive both to the deadline and compare fingerprints.
        let s = Scenario::by_name("flush3").unwrap();
        let mut live = s.build();
        live.run_for(Duration::from_millis(1));
        let mut snap = live.snapshot().expect("canonical stacks are cloneable");
        assert_eq!(live.fingerprint(), snap.fingerprint(), "at the fork");
        live.run_for(Duration::from_millis(30));
        snap.run_for(Duration::from_millis(30));
        assert_eq!(live.fingerprint(), snap.fingerprint(), "after the fork");
        assert_eq!(live.fingerprint(), live.fingerprint_fresh());
        assert_eq!(snap.fingerprint(), snap.fingerprint_fresh());
    }

    #[test]
    fn replay_is_deterministic() {
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        let report = explore(s, &cfg);
        let choices = report.violation.unwrap().choices;
        let a = replay_choices(s, &choices, &cfg);
        let b = replay_choices(s, &choices, &cfg);
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            a.violation.as_ref().map(|v| &v.message),
            b.violation.as_ref().map(|v| &v.message)
        );
    }
}
