//! The bounded depth-first schedule explorer.
//!
//! The search is *stateless* (replay-based): a world cannot be cloned (its
//! stacks hold boxed layers), so a search node is not a snapshot but a
//! **choice prefix** — the run is re-executed from the scenario's settled
//! state, consuming the prefix at each branch point, and continuing with
//! choice 0 (calendar order) once the prefix is spent.  Branch points
//! encountered past the prefix report how many options they offered; their
//! untaken siblings become new prefixes on the DFS stack.
//!
//! Three bounds keep the space finite:
//!
//! * **depth** — only the first `max_depth` branch points of a run offer
//!   alternatives; beyond that the run is deterministic calendar order.
//! * **drops** — at most `max_drops` induced message drops per run.
//! * **states** — a global budget on distinct world fingerprints; reaching a
//!   fingerprint seen before prunes the subtree (the continuation from an
//!   identical state was, or will be, explored elsewhere).
//!
//! The *reduction* skips commuting reorderings: two ready events aimed at
//! different endpoints touch disjoint stacks, so only orderings among events
//! sharing the next event's target are branched.  This is aggressive — it
//! also skips reorderings that would matter via messages created in
//! between — which is why `--no-reduction` exists and E24 measures the
//! difference.

use crate::scenario::{Oracle, Scenario};
use horus_sim::sched::{RunOutcome, Scheduler, Step};
use horus_sim::{ReadyEvent, SimWorld};
use std::collections::HashSet;
use std::time::Duration;

/// Bounds and knobs for one exploration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Concurrency window: ready events within this much of the earliest
    /// pending event may be reordered.  Zero means exact ties only.
    pub window: Duration,
    /// Skip reorderings of deliveries to different endpoints.
    pub reduction: bool,
    /// Branch points per run that offer alternatives.
    pub max_depth: usize,
    /// Induced message drops per run.
    pub max_drops: u32,
    /// Global distinct-fingerprint budget.
    pub max_states: u64,
    /// Global executed-run budget.
    pub max_runs: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            window: Duration::from_micros(100),
            reduction: true,
            max_depth: 6,
            max_drops: 0,
            max_states: 200_000,
            max_runs: 20_000,
        }
    }
}

/// A violation the explorer found, with the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Which oracle failed.
    pub oracle: &'static str,
    /// The oracle's first complaint.
    pub message: String,
    /// Choice list reaching the violation (replayable).
    pub choices: Vec<u16>,
}

/// What one re-execution observed.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Choice taken at each branch point, in order.
    pub taken: Vec<u16>,
    /// Option count at each branch point *eligible for expansion* (within
    /// `max_depth`); parallel prefix of `taken`.
    pub branch_options: Vec<u16>,
    /// Events fired during the explored window.
    pub steps: u64,
    /// Violation observed (at a view change or at the terminal), if any.
    pub violation: Option<FoundViolation>,
    /// Whether the run was cut by visited-state pruning.
    pub pruned: bool,
}

/// Aggregate exploration result.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Runs executed.
    pub runs: u64,
    /// Distinct fingerprints recorded.
    pub states: u64,
    /// Events fired across all runs.
    pub steps: u64,
    /// Branch points expanded.
    pub branch_points: u64,
    /// Runs cut by visited-state pruning.
    pub pruned: u64,
    /// True when the frontier drained within the budgets — the bounded
    /// space is exhausted.
    pub exhausted: bool,
    /// First violation found, if any (search stops on it).
    pub violation: Option<FoundViolation>,
}

/// The scheduler that turns a choice list into a schedule.
///
/// At each step it enumerates the deterministic option list for the current
/// ready set; when more than one option exists it is a *branch point* and
/// the next choice (or 0 past the end of the list) selects.  Because option
/// enumeration is a pure function of the world and the config, the same
/// choices replay the same run, byte for byte.
struct ControlledScheduler<'a> {
    cfg: &'a CheckConfig,
    oracles: &'a [Oracle],
    scenario: &'a Scenario,
    choices: &'a [u16],
    cursor: usize,
    drops_left: u32,
    rec: RunRecord,
    /// Shared visited-fingerprint set; `None` disables pruning (replay).
    visited: Option<&'a mut HashSet<u64>>,
    state_budget_hit: bool,
    /// View-install count at the last oracle check.
    views_seen: usize,
}

impl<'a> ControlledScheduler<'a> {
    fn options(&self, ready: &[ReadyEvent]) -> Vec<Step> {
        let candidates: Vec<usize> = if self.cfg.reduction {
            let class = ready[0].kind.target();
            ready
                .iter()
                .enumerate()
                .filter(|(_, ev)| ev.kind.target() == class)
                .map(|(i, _)| i)
                .collect()
        } else {
            (0..ready.len()).collect()
        };
        let mut opts: Vec<Step> = candidates.iter().map(|&i| Step::Fire(i)).collect();
        if self.drops_left > 0 {
            opts.extend(
                candidates.iter().filter(|&&i| ready[i].kind.droppable()).map(|&i| Step::Drop(i)),
            );
        }
        opts
    }

    fn total_views(&self, world: &SimWorld) -> usize {
        (1..=self.scenario.members)
            .map(|i| world.installed_views(horus_core::prelude::EndpointAddr::new(i)).len())
            .sum()
    }

    fn check_oracles(&mut self, world: &SimWorld) -> bool {
        match first_violation(self.scenario, self.oracles, world, &self.rec.taken) {
            Some(v) => {
                self.rec.violation = Some(v);
                true
            }
            None => false,
        }
    }
}

/// Runs every oracle over the world's delivery logs; the first complaint
/// becomes a [`FoundViolation`] carrying the choices that reached it.
fn first_violation(
    scenario: &Scenario,
    oracles: &[Oracle],
    world: &SimWorld,
    taken: &[u16],
) -> Option<FoundViolation> {
    let logs = scenario.logs(world);
    for oracle in oracles {
        if let Some(v) = oracle.check(&logs).first() {
            return Some(FoundViolation {
                oracle: oracle.name(),
                message: v.to_string(),
                choices: taken.to_vec(),
            });
        }
    }
    None
}

impl Scheduler for ControlledScheduler<'_> {
    fn next_step(&mut self, world: &SimWorld, ready: &[ReadyEvent]) -> Step {
        // Oracle check whenever a view installed since the last look — a
        // violation visible mid-run should be caught (and attributed) at the
        // earliest branch, not only at the horizon.
        let views = self.total_views(world);
        if views != self.views_seen {
            self.views_seen = views;
            if self.check_oracles(world) {
                return Step::Halt;
            }
        }
        let opts = self.options(ready);
        if opts.len() <= 1 {
            self.rec.steps += 1;
            return opts.first().copied().unwrap_or(Step::Fire(0));
        }

        // A real branch point.  Past the replayed prefix, consult the
        // visited set: an already-seen fingerprint means this subtree is
        // covered.  (Within the prefix the states were necessarily seen —
        // that is what replaying is — so pruning there would cut every run.)
        let beyond_prefix = self.cursor >= self.choices.len();
        if beyond_prefix {
            if let Some(visited) = self.visited.as_deref_mut() {
                if visited.len() as u64 >= self.cfg.max_states {
                    self.state_budget_hit = true;
                    return Step::Halt;
                }
                if !visited.insert(world.fingerprint()) {
                    self.rec.pruned = true;
                    return Step::Halt;
                }
            }
        }

        let expandable = self.rec.branch_options.len() < self.cfg.max_depth;
        let choice = if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            usize::from(c).min(opts.len() - 1)
        } else {
            0
        };
        self.cursor += 1;
        self.rec.taken.push(choice as u16);
        if expandable {
            self.rec.branch_options.push(opts.len() as u16);
        }
        let step = opts[choice];
        if matches!(step, Step::Drop(_)) {
            self.drops_left -= 1;
        }
        self.rec.steps += 1;
        step
    }
}

/// Re-executes the scenario under `choices`, calendar order past the end.
/// `visited` enables cross-run pruning (exploration); pass `None` to replay
/// a schedule in full.
pub fn run_one(
    scenario: &Scenario,
    choices: &[u16],
    cfg: &CheckConfig,
    visited: Option<&mut HashSet<u64>>,
) -> RunRecord {
    let mut world = scenario.build();
    let mut ctl = ControlledScheduler {
        cfg,
        oracles: scenario.oracles,
        scenario,
        choices,
        cursor: 0,
        drops_left: cfg.max_drops,
        rec: RunRecord {
            taken: Vec::new(),
            branch_options: Vec::new(),
            steps: 0,
            violation: None,
            pruned: false,
        },
        visited,
        state_budget_hit: false,
        views_seen: 0,
    };
    ctl.views_seen = ctl.total_views(&world);
    let outcome = world.run_scheduled(&mut ctl, cfg.window, scenario.deadline());
    let mut rec = ctl.rec;
    // Terminal oracle pass: quiescence and horizon are where agreement
    // properties are fully judgeable.  Skip it for halted runs — a halt is
    // either an oracle hit (violation already recorded) or a prune/budget
    // cut, whose continuation is judged from the identical state elsewhere.
    if rec.violation.is_none() && outcome != RunOutcome::Halted {
        rec.violation = first_violation(scenario, scenario.oracles, &world, &rec.taken);
    }
    rec
}

/// Replays a choice list with pruning disabled (the verdict-stable path used
/// by `horus-check replay` and the committed fixtures).
pub fn replay_choices(scenario: &Scenario, choices: &[u16], cfg: &CheckConfig) -> RunRecord {
    run_one(scenario, choices, cfg, None)
}

/// Explores the scenario's bounded schedule space depth-first.  Stops at the
/// first violation (callers shrink it), or when the frontier drains
/// (`exhausted`), or when a budget runs out.
pub fn explore(scenario: &Scenario, cfg: &CheckConfig) -> CheckReport {
    let mut report = CheckReport {
        scenario: scenario.name,
        runs: 0,
        states: 0,
        steps: 0,
        branch_points: 0,
        pruned: 0,
        exhausted: false,
        violation: None,
    };
    let mut visited: HashSet<u64> = HashSet::new();
    let mut frontier: Vec<Vec<u16>> = vec![Vec::new()];
    while let Some(prefix) = frontier.pop() {
        if report.runs >= cfg.max_runs || visited.len() as u64 >= cfg.max_states {
            return report;
        }
        let rec = run_one(scenario, &prefix, cfg, Some(&mut visited));
        report.runs += 1;
        report.steps += rec.steps;
        report.branch_points += rec.branch_options.len() as u64;
        if rec.pruned {
            report.pruned += 1;
        }
        report.states = visited.len() as u64;
        if let Some(v) = rec.violation {
            report.violation = Some(v);
            return report;
        }
        // Untaken siblings of every expandable branch point at or past the
        // prefix become new DFS nodes.  (Branch points *inside* the prefix
        // were expanded when the prefix itself was generated.)
        for (i, &opts) in rec.branch_options.iter().enumerate().skip(prefix.len()) {
            for alt in 1..opts {
                let mut p: Vec<u16> = rec.taken[..i].to_vec();
                p.push(alt);
                frontier.push(p);
            }
        }
    }
    report.exhausted = true;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tiny_cfg() -> CheckConfig {
        CheckConfig { max_depth: 3, max_states: 5_000, max_runs: 500, ..CheckConfig::default() }
    }

    #[test]
    fn fifo2_calendar_order_is_clean() {
        let s = Scenario::by_name("fifo2").unwrap();
        let rec = replay_choices(s, &[], &tiny_cfg());
        assert!(rec.violation.is_none(), "default schedule should satisfy FIFO");
    }

    #[test]
    fn fifo2_explorer_finds_the_planted_bug() {
        let s = Scenario::by_name("fifo2").unwrap();
        let report = explore(s, &tiny_cfg());
        let v = report.violation.expect("explorer must find the FIFO violation");
        assert_eq!(v.oracle, "fifo");
        // And the counterexample replays to the same verdict.
        let rec = replay_choices(s, &v.choices, &tiny_cfg());
        let rv = rec.violation.expect("counterexample must replay");
        assert_eq!(rv.message, v.message);
    }

    #[test]
    fn replay_is_deterministic() {
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = tiny_cfg();
        let report = explore(s, &cfg);
        let choices = report.violation.unwrap().choices;
        let a = replay_choices(s, &choices, &cfg);
        let b = replay_choices(s, &choices, &cfg);
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.steps, b.steps);
        assert_eq!(
            a.violation.as_ref().map(|v| &v.message),
            b.violation.as_ref().map(|v| &v.message)
        );
    }
}
