//! Counterexample minimization by delta debugging.
//!
//! The explorer's first violating schedule is rarely minimal: it carries the
//! zero-choices of every branch point passed along the way plus whatever
//! detours the DFS happened to take.  [`shrink`] reduces it with classic
//! `ddmin` (remove chunks of the choice list while the violation persists),
//! then a zeroing pass (replace surviving non-zero choices with calendar
//! order), then trims trailing zeros — choices past the end of the list are
//! implicitly zero at replay.
//!
//! Because a shorter or zeroed list is still a *complete* schedule (replay
//! pads with calendar order), every candidate is just another replay, and
//! the predicate is "does the same oracle still complain".

use crate::explore::{replay_choices, CheckConfig};
use crate::scenario::Scenario;

/// How many candidate replays a shrink may spend.
const SHRINK_BUDGET: u32 = 2_000;

struct Shrinker<'a> {
    scenario: &'a Scenario,
    cfg: &'a CheckConfig,
    oracle: &'a str,
    budget: u32,
}

impl Shrinker<'_> {
    /// Does this choice list still trip the same oracle?
    fn fails(&mut self, choices: &[u16]) -> bool {
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        replay_choices(self.scenario, choices, self.cfg)
            .violation
            .is_some_and(|v| v.oracle == self.oracle)
    }
}

/// Minimizes a violating choice list.  `oracle` names the oracle that must
/// keep failing (from the original [`crate::explore::FoundViolation`]).
/// Returns the smallest failing list found within the shrink budget — at
/// worst, the input itself.
pub fn shrink(scenario: &Scenario, cfg: &CheckConfig, oracle: &str, choices: &[u16]) -> Vec<u16> {
    let mut sh = Shrinker { scenario, cfg, oracle, budget: SHRINK_BUDGET };
    let mut best = choices.to_vec();
    debug_assert!(sh.fails(&best), "shrink input must fail");

    // ddmin: try removing complements at increasing granularity.  The
    // reduction itself is the generic one shared with the soak runner's
    // fault-plan minimizer; the budget lives in the predicate.
    best = horus_sim::soak::ddmin(&best, |candidate| sh.fails(candidate));

    // Zeroing pass: calendar order wherever it still fails.
    for i in 0..best.len() {
        if best[i] != 0 {
            let saved = best[i];
            best[i] = 0;
            if !sh.fails(&best) {
                best[i] = saved;
            }
        }
    }

    // Trailing zeros are implicit.
    while best.last() == Some(&0) {
        best.pop();
    }
    if best.is_empty() {
        // Re-establish that the empty schedule really fails (it should,
        // given the passes above only kept failing candidates, unless the
        // trim removed load-bearing explicit zeros — impossible, since
        // replay pads with zeros — so this is just a debug guard).
        debug_assert!(sh.fails(&best));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::scenario::Scenario;
    use std::time::Duration;

    #[test]
    fn shrinks_fifo2_counterexample_to_minimum() {
        let s = Scenario::by_name("fifo2").unwrap();
        let cfg = CheckConfig {
            max_depth: 4,
            max_states: 5_000,
            max_runs: 500,
            window: Duration::from_micros(100),
            ..CheckConfig::default()
        };
        let report = explore(s, &cfg);
        let v = report.violation.expect("fifo2 must produce a violation");
        let small = shrink(s, &cfg, v.oracle, &v.choices);
        assert!(small.len() <= v.choices.len());
        // Still fails, and with the same oracle.
        let rec = replay_choices(s, &small, &cfg);
        assert_eq!(rec.violation.map(|x| x.oracle), Some("fifo"));
        // Minimal for this scenario: a single non-zero choice (position
        // matters, so leading zeros up to that branch point remain).
        assert_eq!(small.iter().filter(|&&c| c != 0).count(), 1, "got {small:?}");
        assert!(small.len() <= 3, "expected a tiny counterexample, got {small:?}");
    }
}
