//! # horus-check
//!
//! Bounded model checking for Horus protocol stacks.
//!
//! The paper's central claim is compositional: independently written layers
//! stack into protocols that still satisfy end-to-end properties (virtual
//! synchrony, ordering — §5, Tables 3–4).  The repository's evidence for
//! that claim used to be randomized soak testing over the deterministic
//! simulator.  This crate turns the same simulator into a *systematic*
//! search: every source of nondeterminism in a run is either network physics
//! (extracted behind `horus_net::NetScheduler`, pinned by
//! [`horus_net::FixedScheduler`]) or the schedule itself (extracted behind
//! `horus_sim::Scheduler`), so a run is exactly a list of choices — and the
//! explorer enumerates choice lists.
//!
//! The pieces:
//!
//! * [`scenario`] — small, bounded protocol situations (the Figure 2
//!   flush/merge story, concurrent casts under an unordered stack, a merge
//!   interrupted by a false suspicion) with the invariant oracles each must
//!   satisfy.
//! * [`explore`] — the depth-first schedule explorer: snapshot-resume (or
//!   stateless replay) search over choice prefixes, sleep-aware
//!   visited-state pruning on [`horus_sim::SimWorld::fingerprint`], and
//!   happens-before dynamic partial-order reduction via sleep sets — runs
//!   that merely reorder provably commuting deliveries are explored once,
//!   without losing a single reachable state (the differential suite holds
//!   the visited set equal to `--no-reduction`'s).
//! * [`schedule`] — the serialized schedule format: scenario + bounds +
//!   choice list, replayable byte-identically with `horus-check replay`.
//! * [`shrink`] — delta-debugging (`ddmin`) of violating choice lists down
//!   to minimal counterexamples.
//! * [`bridge`] — the trace→schedule bridge: a causal trace captured by
//!   `horus-trace` collectors re-enacted into a replayable schedule, so an
//!   interleaving *observed* anywhere the simulator runs (a traced replay,
//!   a soak-minimized fault plan) becomes a committable fixture.
//!
//! A found violation is therefore not a flaky failure but a *file*: commit
//! it under `tests/fixtures/` and it replays forever.

pub mod bridge;
pub mod explore;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use bridge::{schedule_from_trace, trace_meta};
pub use explore::{
    explore, explore_collect, explore_parallel, replay_choices, replay_choices_traced, CheckConfig,
    CheckReport, FoundViolation, FpSet, RunRecord,
};
pub use scenario::{Oracle, Scenario};
pub use schedule::Schedule;
pub use shrink::shrink;
