//! Bounded protocol situations the explorer searches.
//!
//! A [`Scenario`] is a deterministic world (fixed latency, no probabilistic
//! faults — all nondeterminism belongs to the explorer), a scripted
//! situation, and the invariant oracles the stack must satisfy under *every*
//! schedule.  Scenarios deliberately stay small — a handful of endpoints, a
//! few scripted events, a bounded horizon — because the value of bounded
//! checking is exhausting a small space, not sampling a large one.

use bytes::Bytes;
use horus_core::prelude::*;
use horus_layers::registry::build_stack;
use horus_net::NetConfig;
use horus_sim::invariants::Violation;
use horus_sim::{check_fifo, check_total_order, check_virtual_synchrony, DeliveryLog, SimWorld};
use std::time::Duration;

/// The §7 stack with total order on top.
pub const CANONICAL: &str = "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
/// Virtual synchrony without an ordering layer above it.
pub const VSYNC: &str = "MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
/// Bare best-effort multicast: no reliability, no ordering, no membership.
pub const BARE: &str = "COM(promiscuous=true)";
/// Eager stability gossip (§9) over the virtual-synchrony base.
pub const STABLE_STACK: &str = "STABLE:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
/// Rotating-slot stability (§10) over the same base.
pub const PINWHEEL_STACK: &str = "PINWHEEL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
/// The chaos-soak liveness stack (MERGE-driven healing plus FD), the shape
/// the `soakwedge` scenario re-enacts from its committed fault plan.
pub const SOAK_STACK: &str =
    "MERGE(contacts=1,period=50):MBRSHIP:FD:FRAG:NAK:COM(promiscuous=true)";

/// An end-to-end property oracle, applied to the delivery logs of the
/// still-alive members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// §5 virtual synchrony: view agreement, same-view delivery agreement,
    /// monotonicity, sender-in-view.
    VirtualSynchrony,
    /// All members deliver the common subsequence of casts in one order.
    TotalOrder,
    /// Per-sender FIFO, for scenario payloads of the form `sender:seq`.
    Fifo,
}

impl Oracle {
    /// Stable name used in schedule files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Oracle::VirtualSynchrony => "virtual-synchrony",
            Oracle::TotalOrder => "total-order",
            Oracle::Fifo => "fifo",
        }
    }

    /// Runs the oracle over delivery logs.
    pub fn check(&self, logs: &[DeliveryLog]) -> Vec<Violation> {
        match self {
            Oracle::VirtualSynchrony => check_virtual_synchrony(logs),
            Oracle::TotalOrder => check_total_order(logs),
            Oracle::Fifo => check_fifo(logs, parse_seq_payload),
        }
    }
}

/// Parses a scenario cast payload of the form `sender:seq` (ASCII decimal)
/// into `(sender, seq)` for the FIFO oracle.  Non-conforming payloads are
/// ignored by the oracle.
pub fn parse_seq_payload(body: &Bytes) -> Option<(u64, u64)> {
    let s = std::str::from_utf8(body).ok()?;
    let (sender, seq) = s.split_once(':')?;
    Some((sender.parse().ok()?, seq.parse().ok()?))
}

/// A bounded checking scenario.
pub struct Scenario {
    /// Registry name (`horus-check explore <name>`).
    pub name: &'static str,
    /// One-line description for `horus-check scenarios`.
    pub summary: &'static str,
    /// Stack descriptor every member runs.
    pub stack: &'static str,
    /// Member count; endpoints are `ep:1 ..= ep:members`.
    pub members: u64,
    /// Deterministic settling phase: joins and merges execute in calendar
    /// order for this long before exploration starts, so the search spends
    /// its budget on the scripted situation, not on group assembly.
    pub settle: Duration,
    /// Scripts the situation; `base` is the settle deadline, so events are
    /// scheduled at `base + offset`.
    pub script: fn(&mut SimWorld, SimTime),
    /// Exploration horizon past the settle point.  Events scheduled beyond
    /// `settle + horizon` terminate the run (periodic timers never quiesce,
    /// so the horizon is what bounds a run).
    pub horizon: Duration,
    /// Properties every schedule must satisfy.
    pub oracles: &'static [Oracle],
}

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

impl Scenario {
    /// Builds the scenario's world, fully settled and scripted: members
    /// joined and merged toward `ep:1`, calendar-order execution up to the
    /// settle point, and the scripted events pending.  Everything after this
    /// — which pending event fires next, which frame drops — belongs to the
    /// caller's scheduler.
    pub fn build(&self) -> SimWorld {
        let mut w = SimWorld::deterministic(NetConfig::reliable());
        for i in 1..=self.members {
            let s = build_stack(ep(i), self.stack, StackConfig::default())
                .expect("scenario stack builds");
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=self.members {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        let base = SimTime::ZERO + self.settle;
        w.run_until(base);
        (self.script)(&mut w, base);
        w
    }

    /// Absolute end of the exploration window.
    pub fn deadline(&self) -> SimTime {
        SimTime::ZERO + self.settle + self.horizon
    }

    /// Delivery logs of the still-alive members (the oracle inputs).
    pub fn logs(&self, w: &SimWorld) -> Vec<DeliveryLog> {
        (1..=self.members)
            .filter(|&i| w.is_alive(ep(i)))
            .map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i))))
            .collect()
    }

    /// All registered scenarios.
    pub fn all() -> &'static [Scenario] {
        SCENARIOS
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<&'static Scenario> {
        SCENARIOS.iter().find(|s| s.name == name)
    }
}

fn script_flush3(w: &mut SimWorld, base: SimTime) {
    // The Figure 2 story at model-checking scale: isolate {b, c}, let c cast
    // inside the minority-side view, crash c, heal — the flush protocol must
    // hand c's message to a before the merged view installs, or nobody may
    // keep it.  Virtual synchrony decides which.
    let (a, b, c) = (ep(1), ep(2), ep(3));
    w.partition_at(base + Duration::from_millis(1), &[&[a], &[b, c]]);
    w.cast_bytes_at(base + Duration::from_millis(2), c, &b"3:1"[..]);
    w.crash_at(base + Duration::from_millis(5), c);
    w.heal_at(base + Duration::from_millis(8));
}

fn script_flush4(w: &mut SimWorld, base: SimTime) {
    // The full Figure 2 cast: partition [[a,b],[c,d]], d casts in the
    // minority view, d crashes, partitions heal; c is the only survivor
    // holding d's message and flush must spread it.
    let (a, b, c, d) = (ep(1), ep(2), ep(3), ep(4));
    w.partition_at(base + Duration::from_millis(1), &[&[a, b], &[c, d]]);
    w.cast_bytes_at(base + Duration::from_millis(2), d, &b"4:1"[..]);
    w.crash_at(base + Duration::from_millis(5), d);
    w.heal_at(base + Duration::from_millis(8));
}

fn script_unordered(w: &mut SimWorld, base: SimTime) {
    // Two concurrent casts from different senders.  The VSYNC stack has no
    // ordering layer, so the total-order oracle is a *planted* bug: the
    // checker must find (and minimize) a schedule where two members deliver
    // the pair in different orders.
    w.cast_bytes_at(base + Duration::from_millis(1), ep(1), &b"1:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(1), ep(2), &b"2:1"[..]);
}

fn script_fifo2(w: &mut SimWorld, base: SimTime) {
    // One sender, two back-to-back casts over the bare best-effort stack:
    // no NAK layer means delivery order is arrival order, so swapping the
    // two arrivals at the receiver violates FIFO.  The violation is *not*
    // on the calendar-order schedule — the explorer must reorder.
    w.cast_bytes_at(base + Duration::from_millis(1), ep(1), &b"1:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(1), ep(1), &b"1:2"[..]);
}

fn script_wedge(w: &mut SimWorld, base: SimTime) {
    // The view-merge wedge neighborhood: an established trio gets a
    // redundant merge request; the *false* suspicion against the contact
    // that wedges the group into {a} / {b, c} components is no longer
    // scripted — it is explorer-injected under a `--max-suspects 1`
    // budget, so the checker sweeps *every* (observer, target) pair at
    // every branch point rather than the one the soak happened to hit.
    // The committed fixture pins one suspicion placement byte-for-byte.
    let (a, _b, c) = (ep(1), ep(2), ep(3));
    w.down_at(base + Duration::from_millis(1), c, Down::Merge { contact: a });
}

fn script_token3(w: &mut SimWorld, base: SimTime) {
    // Token loss at the TOTAL holder.  Two members cast under the canonical
    // totally-ordered stack, so the ordering token is in motion between
    // them; explored with a crash budget (`--max-crashes 1`) the explorer
    // may fail-stop whichever member holds the token at any instant.  §4 of
    // the paper waves this off — "in case of a failure, the token may be
    // lost.  This, however, is not a problem" — because the membership
    // change regenerates it; the oracles hold the survivors to that: views
    // must agree and the common casts must deliver in one order.
    w.cast_bytes_at(base + Duration::from_millis(1), ep(2), &b"2:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(2), ep(3), &b"3:1"[..]);
}

fn script_mergerace(w: &mut SimWorld, base: SimTime) {
    // The MERGE discovery race: two members of an established trio issue
    // *crossed* merge requests at the same instant — b nominates c as its
    // contact while c nominates b.  Each side's MERGE layer sees a request
    // naming itself the contact of a group it believes it already
    // coordinates with, so whichever discovery message fires first decides
    // who yields.  Every interleaving (including the symmetric tie the
    // calendar never produces on its own) must leave view agreement intact;
    // the endpoint-class heuristic this PR retires skipped exactly these
    // cross-endpoint orderings.
    let (_a, b, c) = (ep(1), ep(2), ep(3));
    w.down_at(base + Duration::from_millis(1), b, Down::Merge { contact: c });
    w.down_at(base + Duration::from_millis(1), c, Down::Merge { contact: b });
}

fn script_token4(w: &mut SimWorld, base: SimTime) {
    // Double token loss: three ordered casts in flight across a 4-member
    // TOTAL ring, explored with `--max-crashes 2` — the explorer may
    // fail-stop the token holder, watch the membership change regenerate
    // the token, and then fail-stop the *new* holder.  Two survivors must
    // still agree on views and on one delivery order for the common casts.
    // Depths this scenario needs are only reachable because parked branch
    // siblings are CoW snapshots, not deep clones.
    w.cast_bytes_at(base + Duration::from_millis(1), ep(2), &b"2:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(2), ep(3), &b"3:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(3), ep(4), &b"4:1"[..]);
}

fn script_stability(w: &mut SimWorld, base: SimTime) {
    // Stability under reordering: two casts from different senders race the
    // STABLE layer's acknowledgement-row gossip.  Every interleaving of
    // data against rows must leave view agreement and same-view delivery
    // intact — a row that outruns its data, or data that outruns the row
    // acknowledging it, must never confuse the membership underneath.
    w.cast_bytes_at(base + Duration::from_millis(1), ep(1), &b"1:1"[..]);
    w.cast_bytes_at(base + Duration::from_millis(1), ep(3), &b"3:1"[..]);
}

fn script_soakwedge(w: &mut SimWorld, base: SimTime) {
    // The soak-minimized wedge plan, re-enacted as a checking scenario: the
    // committed `.soak` fixture's (partition, crash) pair — once a
    // restart-grant livelock, now the regression pin for that fix — is
    // scheduled verbatim (offsets preserved, anchored 1ms past settle).
    // The checker then owns every interleaving of the healing merge
    // traffic the soak only ever sampled; the same plan also drives the
    // trace→schedule bridge round-trip in the E28 suite.
    let text = include_str!("../../../tests/fixtures/soak_wedge_regression.soak");
    let (_, plan) = horus_sim::soak::parse_artifact(text).expect("committed soak fixture parses");
    let t0 = plan.events.first().map(|e| e.at).unwrap_or(SimTime::ZERO);
    for event in &plan.events {
        let at = base + Duration::from_millis(1) + (event.at - t0);
        match &event.action {
            horus_sim::SoakAction::Partition { sides, dur } => {
                let regions: Vec<&[EndpointAddr]> = sides.iter().map(Vec::as_slice).collect();
                w.partition_at(at, &regions);
                w.heal_at(at + *dur);
            }
            horus_sim::SoakAction::Crash { ep } => w.crash_at(at, *ep),
            horus_sim::SoakAction::Storm { observers, target } => {
                for &observer in observers {
                    w.suspect_at(at, observer, *target);
                }
            }
            horus_sim::SoakAction::Merge { who, contact } => {
                w.down_at(at, *who, Down::Merge { contact: *contact });
            }
        }
    }
}

static SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "flush3",
        summary: "Figure 2 flush/merge at 3 endpoints: minority-side cast, crash, heal",
        stack: VSYNC,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_flush3,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "flush4",
        summary: "Figure 2 flush/merge at 4 endpoints: the paper's full story",
        stack: VSYNC,
        members: 4,
        settle: Duration::from_millis(400),
        script: script_flush4,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "unordered",
        summary: "planted bug: total-order oracle over a stack with no ordering layer",
        stack: VSYNC,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_unordered,
        horizon: Duration::from_millis(200),
        oracles: &[Oracle::TotalOrder],
    },
    Scenario {
        name: "fifo2",
        summary: "planted bug: FIFO oracle over bare best-effort multicast",
        stack: BARE,
        members: 2,
        settle: Duration::from_millis(10),
        script: script_fifo2,
        horizon: Duration::from_millis(50),
        oracles: &[Oracle::Fifo],
    },
    Scenario {
        name: "token3",
        summary: "token loss at the TOTAL holder: crash budget races two ordered casts",
        stack: CANONICAL,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_token3,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony, Oracle::TotalOrder],
    },
    Scenario {
        name: "wedge",
        summary: "view-merge wedge: false suspicion against the contact during a merge",
        stack: VSYNC,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_wedge,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "mergerace",
        summary: "MERGE discovery race: crossed b->c and c->b merge requests at one instant",
        stack: VSYNC,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_mergerace,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "token4",
        summary: "double token loss: crash budget 2 races three casts on the 4-member ring",
        stack: CANONICAL,
        members: 4,
        settle: Duration::from_millis(400),
        script: script_token4,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony, Oracle::TotalOrder],
    },
    Scenario {
        name: "stable3",
        summary: "stability under reordering: STABLE row gossip races two data casts",
        stack: STABLE_STACK,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_stability,
        horizon: Duration::from_millis(500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "pinwheel3",
        summary: "stability under reordering: PINWHEEL slot rotations race two data casts",
        stack: PINWHEEL_STACK,
        members: 3,
        settle: Duration::from_millis(400),
        script: script_stability,
        horizon: Duration::from_millis(500),
        oracles: &[Oracle::VirtualSynchrony],
    },
    Scenario {
        name: "soakwedge",
        summary: "the committed soak wedge plan (partition+crash) under systematic schedules",
        stack: SOAK_STACK,
        members: 4,
        settle: Duration::from_millis(400),
        script: script_soakwedge,
        horizon: Duration::from_millis(2500),
        oracles: &[Oracle::VirtualSynchrony],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_finds_every_scenario() {
        for s in Scenario::all() {
            assert!(Scenario::by_name(s.name).is_some());
        }
        assert!(Scenario::by_name("nope").is_none());
    }

    #[test]
    fn seq_payload_parses() {
        assert_eq!(parse_seq_payload(&Bytes::from_static(b"3:14")), Some((3, 14)));
        assert_eq!(parse_seq_payload(&Bytes::from_static(b"M")), None);
    }

    #[test]
    fn flush3_settles_into_full_view() {
        let s = Scenario::by_name("flush3").unwrap();
        let w = s.build();
        for i in 1..=s.members {
            let views = w.installed_views(EndpointAddr::new(i));
            assert_eq!(
                views.last().map(|v| v.len()),
                Some(s.members as usize),
                "ep{i} must be in the full view after settling"
            );
        }
    }
}
