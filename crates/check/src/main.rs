//! `horus-check`: bounded model checking of Horus protocol stacks.
//!
//! ```text
//! horus-check scenarios
//! horus-check explore <scenario> [--depth N] [--drops N] [--max-crashes N]
//!                     [--max-suspects N] [--wedge-oracle]
//!                     [--states N] [--runs N] [--window-us N] [--workers N]
//!                     [--no-reduction] [--fresh-fp] [--no-snapshot] [--no-cow]
//!                     [--out FILE]
//! horus-check replay <schedule-file> [--trace FILE] [--format v1|v2]
//!                    [--sample N] [--kinds a,b,...]
//! horus-check bridge <trace-file> [--out FILE]
//! ```
//!
//! `explore` exits 0 when the bounded space is clean, 3 when a violation was
//! found (after shrinking and printing/writing the schedule).  `replay` exits
//! 0 when the re-executed verdict matches the one recorded in the file, 2 on
//! a mismatch; `--trace` additionally captures the replay as a causal trace
//! file (inspect with `horus-trace`, convert back with `bridge`) — `--format
//! v2` writes the binary format, `--sample N` keeps 1-in-N records, and
//! `--kinds` restricts the capture to a comma-separated kind list (the
//! thinning flags are stamped into the meta; sampled traces cannot be
//! bridged).  `bridge` re-enacts a captured trace (either format) into a
//! replayable schedule.

use horus_check::schedule::verdict_line;
use horus_check::{
    explore, explore_parallel, replay_choices, replay_choices_traced, schedule_from_trace,
    trace_meta, CheckConfig, Scenario, Schedule,
};
use horus_core::trace::{FilterSink, KindMask, SamplingSink, TraceSink};
use horus_trace::{
    parse_trace_any, serialize_trace, serialize_trace_v2, TraceBuf, META_KINDS, META_SAMPLED_OUT,
    META_SAMPLE_EVERY,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  horus-check scenarios\n  horus-check explore <scenario> [--depth N] \
         [--drops N] [--max-crashes N] [--max-suspects N] [--wedge-oracle] [--states N] \
         [--runs N] [--window-us N] [--workers N] \
         [--no-reduction] [--fresh-fp] [--no-snapshot] [--no-cow] [--out FILE]\n  \
         horus-check replay <schedule-file> [--trace FILE] [--format v1|v2] [--sample N] \
         [--kinds a,b,...]\n  \
         horus-check bridge <trace-file> [--out FILE]"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("scenarios") => {
            for s in Scenario::all() {
                println!("{:<10} {} members, stack {} — {}", s.name, s.members, s.stack, s.summary);
            }
            ExitCode::SUCCESS
        }
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("bridge") => cmd_bridge(&args[1..]),
        _ => usage(),
    }
}

fn cmd_explore(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else { return usage() };
    let Some(scenario) = Scenario::by_name(name) else {
        eprintln!("unknown scenario {name:?}; try `horus-check scenarios`");
        return ExitCode::from(1);
    };
    let mut cfg = CheckConfig::default();
    let mut out: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut grab = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match flag.as_str() {
            "--depth" => match grab("--depth").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_depth = v,
                None => return ExitCode::from(1),
            },
            "--drops" => match grab("--drops").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_drops = v,
                None => return ExitCode::from(1),
            },
            "--max-crashes" => match grab("--max-crashes").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_crashes = v,
                None => return ExitCode::from(1),
            },
            "--max-suspects" => match grab("--max-suspects").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_suspects = v,
                None => return ExitCode::from(1),
            },
            "--wedge-oracle" => cfg.wedge_oracle = true,
            "--workers" => match grab("--workers").and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => workers = Some(v),
                _ => return ExitCode::from(1),
            },
            "--states" => match grab("--states").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_states = v,
                None => return ExitCode::from(1),
            },
            "--runs" => match grab("--runs").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_runs = v,
                None => return ExitCode::from(1),
            },
            "--window-us" => match grab("--window-us").and_then(|v| v.parse().ok()) {
                Some(v) => cfg.window = Duration::from_micros(v),
                None => return ExitCode::from(1),
            },
            "--no-reduction" => cfg.reduction = false,
            "--fresh-fp" => cfg.incremental_fp = false,
            "--no-snapshot" => cfg.snapshot_resume = false,
            "--no-cow" => cfg.cow_snapshots = false,
            "--out" => match grab("--out") {
                Some(v) => out = Some(v),
                None => return ExitCode::from(1),
            },
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }

    let started = std::time::Instant::now();
    let report = match workers {
        Some(n) => explore_parallel(scenario, &cfg, n),
        None => explore(scenario, &cfg),
    };
    let secs = started.elapsed().as_secs_f64();
    println!(
        "scenario {} ({}): {} runs, {} states, {} steps, {} branch points, {} pruned in {:.2}s ({})",
        report.scenario,
        match workers {
            Some(n) => format!("{n} workers"),
            None => "sequential".to_string(),
        },
        report.runs,
        report.states,
        report.steps,
        report.branch_points,
        report.pruned,
        secs,
        if report.exhausted { "exhausted" } else { "budget reached" },
    );
    let Some(v) = report.violation else {
        println!("no violations within bounds");
        return ExitCode::SUCCESS;
    };
    println!("VIOLATION ({}): {}", v.oracle, v.message);
    println!("shrinking {} choices...", v.choices.len());
    let small = horus_check::shrink(scenario, &cfg, v.oracle, &v.choices);
    let rec = replay_choices(scenario, &small, &cfg);
    let schedule = Schedule::new(scenario, &cfg, &small, verdict_line(&rec));
    let text = schedule.serialize();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(1);
            }
            println!("schedule written to {path} ({} choices)", small.len());
        }
        None => print!("{text}"),
    }
    ExitCode::from(3)
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { return usage() };
    let mut trace_out: Option<String> = None;
    let mut format_v2 = false;
    let mut sample: u64 = 1;
    let mut kinds: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--trace" => match it.next() {
                Some(v) => trace_out = Some(v.clone()),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("v1") => format_v2 = false,
                Some("v2") => format_v2 = true,
                _ => return usage(),
            },
            "--sample" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => sample = n,
                _ => return usage(),
            },
            "--kinds" => match it.next() {
                Some(v) => kinds = Some(v.clone()),
                None => return usage(),
            },
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let schedule = match Schedule::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let Some(scenario) = Scenario::by_name(&schedule.scenario) else {
        eprintln!("schedule references unknown scenario {:?}", schedule.scenario);
        return ExitCode::from(1);
    };
    let cfg = schedule.to_config();
    let rec = match &trace_out {
        Some(out) => {
            let buf = Arc::new(TraceBuf::new());
            // Wrap inside-out: the filter sees every record and the
            // sampler thins what the filter admits, so `--sample N` means
            // 1-in-N of the records the capture would otherwise keep.
            let mut sink: Arc<dyn TraceSink> = buf.clone();
            if let Some(spec) = &kinds {
                match KindMask::from_names(spec.split(',')) {
                    Ok(m) => sink = Arc::new(FilterSink::new(sink, m)),
                    Err(e) => {
                        eprintln!("--kinds: {e}");
                        return usage();
                    }
                }
            }
            let sampler = (sample > 1).then(|| {
                let s = Arc::new(SamplingSink::new(sink.clone(), sample));
                sink = s.clone() as Arc<dyn TraceSink>;
                s
            });
            let rec = replay_choices_traced(scenario, &schedule.choices, &cfg, sink);
            let mut meta = trace_meta(scenario, &cfg);
            if let Some(spec) = &kinds {
                meta.push((META_KINDS.to_string(), spec.clone()));
            }
            if let Some(s) = &sampler {
                meta.push((META_SAMPLE_EVERY.to_string(), s.every().to_string()));
                meta.push((META_SAMPLED_OUT.to_string(), s.sampled_out().to_string()));
            }
            let records = buf.take();
            let bytes = if format_v2 {
                serialize_trace_v2(&meta, &records)
            } else {
                serialize_trace(&meta, &records).into_bytes()
            };
            if let Err(e) = std::fs::write(out, &bytes) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::from(1);
            }
            println!(
                "trace written to {out} ({} records, {} bytes, {})",
                records.len(),
                bytes.len(),
                if format_v2 { "v2" } else { "v1" }
            );
            rec
        }
        None => replay_choices(scenario, &schedule.choices, &cfg),
    };
    let verdict = verdict_line(&rec);
    println!("replayed {} with {} choices: {verdict}", schedule.scenario, schedule.choices.len());
    if verdict == schedule.verdict {
        println!("verdict matches the recorded one");
        ExitCode::SUCCESS
    } else {
        eprintln!("VERDICT DRIFT\n  recorded: {}\n  replayed: {verdict}", schedule.verdict);
        ExitCode::from(2)
    }
}

fn cmd_bridge(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else { return usage() };
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage(),
            },
            other => {
                eprintln!("unknown flag {other:?}");
                return usage();
            }
        }
    }
    let bytes = match std::fs::read(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let trace = match parse_trace_any(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let schedule = match schedule_from_trace(&trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bridge {path}: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "bridged {} ({} records) into {} choices: {}",
        path,
        trace.records.len(),
        schedule.choices.len(),
        schedule.verdict
    );
    let text = schedule.serialize();
    match out {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &text) {
                eprintln!("cannot write {p}: {e}");
                return ExitCode::from(1);
            }
            println!("schedule written to {p}");
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
