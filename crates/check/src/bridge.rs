//! The trace→schedule bridge: from a captured trace back to a replayable
//! `.check` schedule.
//!
//! A trace recorded under virtual time (a `horus-check replay --trace` run,
//! or any [`horus_sim::SimWorld`] run with a [`horus_trace::TraceBuf`]
//! installed) names every scheduling decision the run took: calendar fires
//! carry their calendar sequence number, induced drops carry the dropped
//! event's, and explorer-injected faults name their endpoints.  Those are
//! exactly the degrees of freedom a schedule's choice list controls — so a
//! trace can be *re-enacted*: re-execute the scenario, and at every step
//! select the option whose effect matches the next schedule-relevant trace
//! event, recording the option's index at each branch point.  The indices,
//! trimmed of trailing calendar-order defaults, are a v1 schedule that
//! `horus-check replay` re-executes to the same interleaving — the loop
//! that turns "the soak saw it wedge once" into "the checker replays that
//! exact wedge forever".
//!
//! The mapping leans on two invariants:
//!
//! * option enumeration is the shared [`enumerate_options`] — the bridge
//!   sees byte-for-byte the option lists a replay will see;
//! * calendar sequence numbers are a pure function of the world's
//!   insertion history, so re-executing the same prefix reproduces the same
//!   ids and `ready[i].id.1 == seq` identifies the fired event uniquely.

use crate::explore::{enumerate_options, replay_choices, CheckConfig};
use crate::scenario::Scenario;
use crate::schedule::{verdict_line, Schedule};
use horus_core::prelude::EndpointAddr;
use horus_sim::sched::{Scheduler, Step};
use horus_sim::{ReadyEvent, SimWorld};
use horus_trace::{ParsedRecord, ParsedTrace};
use std::time::Duration;

/// One schedule-relevant trace event, in trace order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceOp {
    /// A calendar fire, by calendar sequence number.
    Fire(u64),
    /// An induced drop of pending event `seq`.
    Drop(u64),
    /// An explorer-injected fail-stop crash.
    Crash(EndpointAddr),
    /// An explorer-injected suspicion.
    Suspect { observer: EndpointAddr, target: EndpointAddr },
}

/// Filters a parsed trace down to the operations a scheduler controls.
/// Stack-internal hops (`layer-*`, `deliver`, `frame-send`, ...) are
/// consequences of these, not decisions, and are skipped.
fn schedule_ops(records: &[ParsedRecord]) -> Result<Vec<TraceOp>, String> {
    let mut ops = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let seq = || {
            r.u64_field("seq")
                .ok_or_else(|| format!("record {i} ({}) lacks a calendar seq", r.kind))
        };
        match r.kind.as_str() {
            // Every calendar fire the simulator dispatches.
            "frame-deliver" | "timer-fire" | "app-down" | "crash" | "partition" | "heal"
            | "fault" => ops.push(TraceOp::Fire(seq()?)),
            // Only *induced* drops are scheduling decisions; physics and
            // decode drops replay on their own.
            "frame-drop" if r.fields.get("reason").map(String::as_str) == Some("induced") => {
                ops.push(TraceOp::Drop(seq()?));
            }
            "inject-crash" => ops.push(TraceOp::Crash(EndpointAddr::new(r.ep))),
            "inject-suspect" => {
                let observer = r
                    .u64_field("observer")
                    .ok_or_else(|| format!("record {i}: inject-suspect lacks observer"))?;
                let target = r
                    .u64_field("target")
                    .ok_or_else(|| format!("record {i}: inject-suspect lacks target"))?;
                ops.push(TraceOp::Suspect {
                    observer: EndpointAddr::new(observer),
                    target: EndpointAddr::new(target),
                });
            }
            _ => {}
        }
    }
    Ok(ops)
}

/// The re-enacting scheduler: at every step, take the option matching the
/// next trace operation and remember its index at branch points.
struct BridgeScheduler<'a> {
    members: u64,
    ops: &'a [TraceOp],
    cursor: usize,
    drops_left: u32,
    crashes_left: u32,
    suspects_left: u32,
    choices: Vec<u16>,
    error: Option<String>,
    opts_buf: Vec<Step>,
}

impl BridgeScheduler<'_> {
    /// Finds the option index realizing `op` against this ready set.
    fn select(&self, ready: &[ReadyEvent], opts: &[Step], op: TraceOp) -> Option<usize> {
        opts.iter().position(|&s| match (op, s) {
            (TraceOp::Fire(seq), Step::Fire(i)) => ready[i].id.1 == seq,
            (TraceOp::Drop(seq), Step::Drop(i)) => ready[i].id.1 == seq,
            (TraceOp::Crash(ep), Step::Crash(m)) => m == ep,
            (TraceOp::Suspect { observer, target }, Step::Suspect { observer: o, target: t }) => {
                o == observer && t == target
            }
            _ => false,
        })
    }
}

impl Scheduler for BridgeScheduler<'_> {
    fn next_step(&mut self, world: &SimWorld, ready: &[ReadyEvent]) -> Step {
        let mut opts = std::mem::take(&mut self.opts_buf);
        enumerate_options(
            self.members,
            world,
            ready,
            self.drops_left,
            self.crashes_left,
            self.suspects_left,
            &mut opts,
        );
        let Some(&op) = self.ops.get(self.cursor) else {
            // Trace exhausted (it ended at its horizon or an early halt):
            // the remainder is calendar order, which a replay reaches by
            // running out of choices — emit index 0 so trailing trims.
            if opts.len() > 1 {
                self.choices.push(0);
            }
            self.opts_buf = opts;
            return Step::Fire(0);
        };
        let Some(idx) = self.select(ready, &opts, op) else {
            self.error = Some(format!(
                "trace op {}/{} ({op:?}) matches no option of the re-executed run \
                 ({} ready, {} options) — trace and scenario/config disagree",
                self.cursor,
                self.ops.len(),
                ready.len(),
                opts.len(),
            ));
            self.opts_buf = opts;
            return Step::Halt;
        };
        self.cursor += 1;
        if opts.len() > 1 {
            self.choices.push(idx as u16);
        }
        let step = opts[idx];
        match step {
            Step::Drop(_) => self.drops_left -= 1,
            Step::Crash(_) => self.crashes_left -= 1,
            Step::Suspect { .. } => self.suspects_left -= 1,
            _ => {}
        }
        self.opts_buf = opts;
        step
    }
}

/// Reconstructs the [`CheckConfig`] a trace was captured under from its
/// `meta` lines (written by `horus-check replay --trace`).
pub fn config_from_meta(trace: &ParsedTrace) -> Result<CheckConfig, String> {
    let get = |key: &str| -> Result<u64, String> {
        trace
            .meta
            .get(key)
            .ok_or_else(|| format!("trace meta lacks {key:?}"))?
            .parse()
            .map_err(|_| format!("trace meta {key:?} is not a number"))
    };
    Ok(CheckConfig {
        window: Duration::from_micros(get("window_us")?),
        reduction: trace.meta.get("reduction").map(String::as_str) != Some("off"),
        max_depth: get("max_depth")? as usize,
        max_drops: get("max_drops")? as u32,
        max_crashes: get("max_crashes")? as u32,
        max_suspects: get("max_suspects")? as u32,
        ..CheckConfig::default()
    })
}

/// The `meta` lines `horus-check replay --trace` stamps into a captured
/// trace — everything [`schedule_from_trace`] needs to re-enact it.  Keys
/// come out sorted, matching how a parsed trace re-serializes, so a
/// capture survives a v1→v2→v1 `convert` loop byte-identically.
pub fn trace_meta(scenario: &Scenario, cfg: &CheckConfig) -> Vec<(String, String)> {
    [
        ("max_crashes", cfg.max_crashes.to_string()),
        ("max_depth", cfg.max_depth.to_string()),
        ("max_drops", cfg.max_drops.to_string()),
        ("max_suspects", cfg.max_suspects.to_string()),
        ("reduction", if cfg.reduction { "on" } else { "off" }.to_string()),
        ("scenario", scenario.name.to_string()),
        ("window_us", (cfg.window.as_micros() as u64).to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// Converts a captured trace into a replayable v1 schedule.
///
/// Re-executes the trace's scenario under its recorded bounds, steering
/// every step to the option the trace observed; the branch-point indices
/// that fall out (trailing calendar-order zeros trimmed) plus the re-run's
/// verdict form the schedule.  The returned schedule replays — by
/// construction — the exact interleaving the trace recorded.
///
/// # Errors
///
/// When the trace lacks the bridge metadata, names an unknown scenario, or
/// describes a run the scenario/config cannot re-enact (drift between the
/// trace and the code, or a trace from a different world).
pub fn schedule_from_trace(trace: &ParsedTrace) -> Result<Schedule, String> {
    // A sampled or kind-filtered capture is missing calendar fires the
    // re-enactment must match one for one — refuse up front with the real
    // reason instead of failing mid-re-enactment with a drift error.
    if let Some(every) =
        trace.meta.get(horus_trace::META_SAMPLE_EVERY).and_then(|v| v.parse::<u64>().ok())
    {
        if every > 1 {
            return Err(format!(
                "trace was sampled 1-in-{every}; the bridge needs every record — \
                 recapture without --sample"
            ));
        }
    }
    if let Some(kinds) = trace.meta.get(horus_trace::META_KINDS) {
        return Err(format!(
            "trace was captured with --kinds {kinds}; the bridge needs every record — \
             recapture without --kinds"
        ));
    }
    let name = trace.meta.get("scenario").ok_or("trace meta lacks \"scenario\"")?;
    let scenario = Scenario::by_name(name)
        .ok_or_else(|| format!("trace references unknown scenario {name:?}"))?;
    let cfg = config_from_meta(trace)?;
    let ops = schedule_ops(&trace.records)?;

    let mut world = scenario.build();
    let mut bridge = BridgeScheduler {
        members: scenario.members,
        ops: &ops,
        cursor: 0,
        drops_left: cfg.max_drops,
        crashes_left: cfg.max_crashes,
        suspects_left: cfg.max_suspects,
        choices: Vec::new(),
        error: None,
        opts_buf: Vec::new(),
    };
    world.run_scheduled(&mut bridge, cfg.window, scenario.deadline());
    if let Some(e) = bridge.error {
        return Err(e);
    }
    if bridge.cursor < ops.len() {
        return Err(format!(
            "re-enactment consumed only {}/{} trace ops before the horizon",
            bridge.cursor,
            ops.len()
        ));
    }
    let mut choices = bridge.choices;
    while choices.last() == Some(&0) {
        choices.pop();
    }
    // The verdict comes from a *clean-room replay* of the derived choices —
    // the same path `horus-check replay` takes — so the fixture pins what
    // replaying will actually compute, not what the bridge run saw.
    let rec = replay_choices(scenario, &choices, &cfg);
    Ok(Schedule::new(scenario, &cfg, &choices, verdict_line(&rec)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, replay_choices_traced};
    use horus_core::trace::TraceSink;
    use horus_trace::{parse_trace, serialize_trace, TraceBuf};
    use std::sync::Arc;

    /// Captures a replay of `choices` as a parsed trace with bridge meta.
    fn capture(name: &str, choices: &[u16], cfg: &CheckConfig) -> ParsedTrace {
        let scenario = Scenario::by_name(name).unwrap();
        let buf = Arc::new(TraceBuf::new());
        let _ = replay_choices_traced(scenario, choices, cfg, buf.clone() as Arc<dyn TraceSink>);
        let text = serialize_trace(&trace_meta(scenario, cfg), &buf.take());
        parse_trace(&text).unwrap()
    }

    #[test]
    fn calendar_order_run_bridges_to_the_empty_schedule() {
        let cfg = CheckConfig::default();
        let trace = capture("fifo2", &[], &cfg);
        let schedule = schedule_from_trace(&trace).unwrap();
        assert_eq!(schedule.scenario, "fifo2");
        assert!(schedule.choices.is_empty(), "got {:?}", schedule.choices);
        assert_eq!(schedule.verdict, "clean");
    }

    #[test]
    fn violating_interleaving_round_trips_through_the_bridge() {
        // explore → counterexample → traced replay → bridge → the same
        // choices and the same verdict: the full loop the subsystem exists
        // for.
        let scenario = Scenario::by_name("fifo2").unwrap();
        let cfg = CheckConfig { max_depth: 3, ..CheckConfig::default() };
        let found = explore(scenario, &cfg).violation.expect("planted bug");
        let trace = capture("fifo2", &found.choices, &cfg);
        let schedule = schedule_from_trace(&trace).unwrap();
        // Modulo trailing calendar-order zeros (which the bridge trims and
        // a replay re-derives as defaults), the choices survive the loop.
        let mut trimmed = found.choices.clone();
        while trimmed.last() == Some(&0) {
            trimmed.pop();
        }
        assert_eq!(schedule.choices, trimmed);
        let rec = replay_choices(scenario, &found.choices, &cfg);
        assert_eq!(schedule.verdict, verdict_line(&rec));
        assert!(schedule.verdict.starts_with("violation fifo:"));
    }

    #[test]
    fn injected_faults_bridge_back_to_their_indices() {
        // A suspicion-injecting schedule (the wedge fixture's shape): the
        // trace records inject-suspect, the bridge must map it back into
        // the suspect block of the option list.
        let scenario = Scenario::by_name("wedge").unwrap();
        let cfg = CheckConfig { max_suspects: 1, ..CheckConfig::default() };
        let trace = capture("wedge", &[11], &cfg);
        assert!(trace.records.iter().any(|r| r.kind == "inject-suspect"));
        let schedule = schedule_from_trace(&trace).unwrap();
        assert_eq!(schedule.choices, vec![11]);
        assert_eq!(schedule.verdict, "clean");
    }

    #[test]
    fn foreign_trace_is_rejected_not_misread() {
        // A trace captured under one config cannot silently bridge under
        // claims of another: a fifo2 trace whose meta lies about the
        // scenario must fail loudly.
        let cfg = CheckConfig::default();
        let mut trace = capture("fifo2", &[1], &cfg);
        trace.meta.insert("scenario".into(), "flush3".into());
        let err = schedule_from_trace(&trace).unwrap_err();
        assert!(err.contains("matches no option"), "got {err}");
    }
}
