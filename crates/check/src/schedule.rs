//! Serialized schedules: a counterexample as a committable text file.
//!
//! A schedule is everything needed to re-execute one run byte-identically:
//! the scenario name, the bounds that shape option enumeration (window,
//! reduction, depth, drops), the choice list, and the verdict the run is
//! expected to reproduce.  The format is deliberately line-oriented plain
//! text so fixtures diff well and survive refactors reviewably:
//!
//! ```text
//! # horus-check schedule v1
//! scenario: fifo2
//! window_us: 100
//! reduction: on
//! max_depth: 6
//! max_drops: 0
//! max_crashes: 0
//! choices: 1
//! verdict: violation fifo: FIFO: ep:2 ...
//! ```
//!
//! `max_crashes` and `max_suspects` are optional on input and default to
//! 0, so fixtures recorded before those choice points existed parse (and
//! replay) unchanged; serialization always writes them.

use crate::explore::{CheckConfig, RunRecord};
use crate::scenario::Scenario;
use std::time::Duration;

/// Magic first line of every schedule file.
pub const HEADER: &str = "# horus-check schedule v1";

/// A parsed (or to-be-written) schedule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Scenario name (must exist in the registry at replay time).
    pub scenario: String,
    /// Concurrency window in microseconds.
    pub window_us: u64,
    /// Whether the sleep-set DPOR was on when the schedule was found.
    /// Provenance only: the reduction never filters option lists (choice
    /// indices are stable either way) and replay never prunes.
    pub reduction: bool,
    /// Branch-point expansion depth the run was found under.
    pub max_depth: usize,
    /// Induced-drop budget the run was found under.
    pub max_drops: u32,
    /// Injected-crash budget the run was found under (0 for fixtures that
    /// predate the crash choice point).
    pub max_crashes: u32,
    /// Injected-suspicion budget the run was found under (0 for fixtures
    /// that predate the suspicion choice point).
    pub max_suspects: u32,
    /// The choice list.
    pub choices: Vec<u16>,
    /// Expected verdict line (see [`verdict_line`]).
    pub verdict: String,
}

/// Renders a run's outcome as the one-line verdict a schedule file pins.
pub fn verdict_line(rec: &RunRecord) -> String {
    match &rec.violation {
        Some(v) => format!("violation {}: {}", v.oracle, v.message.replace('\n', " / ")),
        None => "clean".to_string(),
    }
}

impl Schedule {
    /// Builds a schedule from an exploration outcome.
    pub fn new(scenario: &Scenario, cfg: &CheckConfig, choices: &[u16], verdict: String) -> Self {
        Schedule {
            scenario: scenario.name.to_string(),
            window_us: cfg.window.as_micros() as u64,
            reduction: cfg.reduction,
            max_depth: cfg.max_depth,
            max_drops: cfg.max_drops,
            max_crashes: cfg.max_crashes,
            max_suspects: cfg.max_suspects,
            choices: choices.to_vec(),
            verdict,
        }
    }

    /// The replay configuration this schedule was recorded under.  State and
    /// run budgets do not apply to a single replayed run.
    pub fn to_config(&self) -> CheckConfig {
        CheckConfig {
            window: Duration::from_micros(self.window_us),
            reduction: self.reduction,
            max_depth: self.max_depth,
            max_drops: self.max_drops,
            max_crashes: self.max_crashes,
            max_suspects: self.max_suspects,
            ..CheckConfig::default()
        }
    }

    /// Serializes to the schedule file format.
    pub fn serialize(&self) -> String {
        let choices = self.choices.iter().map(u16::to_string).collect::<Vec<_>>().join(" ");
        format!(
            "{HEADER}\nscenario: {}\nwindow_us: {}\nreduction: {}\nmax_depth: {}\nmax_drops: {}\nmax_crashes: {}\nmax_suspects: {}\nchoices: {}\nverdict: {}\n",
            self.scenario,
            self.window_us,
            if self.reduction { "on" } else { "off" },
            self.max_depth,
            self.max_drops,
            self.max_crashes,
            self.max_suspects,
            choices,
            self.verdict,
        )
    }

    /// Parses a schedule file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => return Err(format!("bad header: {other:?} (expected {HEADER:?})")),
        }
        let mut scenario = None;
        let mut window_us = None;
        let mut reduction = None;
        let mut max_depth = None;
        let mut max_drops = None;
        let mut max_crashes = None;
        let mut max_suspects = None;
        let mut choices = None;
        let mut verdict = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed line (no `key: value`): {line:?}"))?;
            let val = val.trim();
            match key.trim() {
                "scenario" => scenario = Some(val.to_string()),
                "window_us" => {
                    window_us = Some(val.parse().map_err(|e| format!("window_us {val:?}: {e}"))?);
                }
                "reduction" => {
                    reduction = Some(match val {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("reduction must be on/off, got {other:?}")),
                    });
                }
                "max_depth" => {
                    max_depth = Some(val.parse().map_err(|e| format!("max_depth {val:?}: {e}"))?);
                }
                "max_drops" => {
                    max_drops = Some(val.parse().map_err(|e| format!("max_drops {val:?}: {e}"))?);
                }
                "max_crashes" => {
                    max_crashes =
                        Some(val.parse().map_err(|e| format!("max_crashes {val:?}: {e}"))?);
                }
                "max_suspects" => {
                    max_suspects =
                        Some(val.parse().map_err(|e| format!("max_suspects {val:?}: {e}"))?);
                }
                "choices" => {
                    choices = Some(
                        val.split_whitespace()
                            .map(|c| c.parse().map_err(|e| format!("choice {c:?}: {e}")))
                            .collect::<Result<Vec<u16>, String>>()?,
                    );
                }
                "verdict" => verdict = Some(val.to_string()),
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(Schedule {
            scenario: scenario.ok_or("missing scenario")?,
            window_us: window_us.ok_or("missing window_us")?,
            reduction: reduction.ok_or("missing reduction")?,
            max_depth: max_depth.ok_or("missing max_depth")?,
            max_drops: max_drops.ok_or("missing max_drops")?,
            // Optional with a zero default: fixtures recorded before these
            // choice points replay under exactly the old option lists.
            max_crashes: max_crashes.unwrap_or(0),
            max_suspects: max_suspects.unwrap_or(0),
            choices: choices.ok_or("missing choices")?,
            verdict: verdict.ok_or("missing verdict")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            scenario: "fifo2".into(),
            window_us: 100,
            reduction: true,
            max_depth: 6,
            max_drops: 0,
            max_crashes: 0,
            max_suspects: 0,
            choices: vec![1, 0, 2],
            verdict: "violation fifo: FIFO: something".into(),
        }
    }

    #[test]
    fn roundtrips() {
        let s = sample();
        let text = s.serialize();
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Schedule::parse("nope").is_err());
        assert!(Schedule::parse(&format!("{HEADER}\nscenario fifo2\n")).is_err());
        let missing = format!("{HEADER}\nscenario: fifo2\n");
        assert!(Schedule::parse(&missing).is_err());
    }

    #[test]
    fn empty_choices_roundtrip() {
        let mut s = sample();
        s.choices.clear();
        assert_eq!(Schedule::parse(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn pre_crash_point_files_parse_with_zero_budget() {
        // A v1 file without the max_crashes key (everything committed before
        // the crash choice point existed) defaults to 0.
        let old = format!(
            "{HEADER}\nscenario: fifo2\nwindow_us: 100\nreduction: on\n\
             max_depth: 6\nmax_drops: 0\nchoices: 1\nverdict: clean\n"
        );
        let s = Schedule::parse(&old).unwrap();
        assert_eq!(s.max_crashes, 0);
        assert_eq!(s.max_suspects, 0);
        assert_eq!(s.to_config().max_crashes, 0);
        assert_eq!(s.to_config().max_suspects, 0);
    }

    #[test]
    fn suspect_budget_roundtrips() {
        let mut s = sample();
        s.max_suspects = 1;
        let text = s.serialize();
        assert!(text.contains("max_suspects: 1"));
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn crash_budget_roundtrips() {
        let mut s = sample();
        s.max_crashes = 2;
        let text = s.serialize();
        assert!(text.contains("max_crashes: 2"));
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }
}
