//! # horus-trace
//!
//! Collectors, file format, and inspection tooling for the structured trace
//! events the whole Horus runtime emits through
//! [`horus_core::trace::TraceSink`] (see DESIGN decision 10):
//!
//! * [`TraceBuf`] — an ordered, vector-clock-stamped log for the
//!   virtual-time simulator, where `SimWorld` announces the causal clock of
//!   every dispatch;
//! * [`TraceRing`] — a lock-free bounded MPMC ring for the real-time
//!   executors (threaded, sharded), where many worker threads record
//!   concurrently and a collector drains;
//! * the line-oriented **trace file format** (`# horus-trace v1`) with
//!   [`serialize_trace`] / [`parse_trace`];
//! * [`chrome_trace`] — Chrome `about:tracing` / Perfetto JSON export;
//! * [`delivery_projection`] — the executor-independent canonical view of a
//!   trace (per `(receiver, sender)` CAST digest sequences) used by the
//!   cross-executor determinism tests and `horus-trace diff`.
//!
//! The trace→schedule bridge that turns one of these files back into a
//! `horus-check` replay schedule lives in `horus-check` (it needs the
//! scenario registry); this crate stays a pure producer/consumer of traces.

use horus_core::addr::EndpointAddr;
use horus_core::time::SimTime;
use horus_core::trace::{ClockEntry, DropReason, TraceEvent, TraceKind, TraceSink};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub mod metrics;
pub mod v2;

pub use metrics::{latency_stats, Histogram, LatencyStats, MetricsSink};
pub use v2::{parse_trace_any, parse_trace_v2, serialize_trace_v2, trace_to_v2, TRACE_HEADER_V2};

/// The file-format header line.
pub const TRACE_HEADER: &str = "# horus-trace v1";

/// Meta key: records a collector dropped because its ring overflowed —
/// nonzero means the trace has holes and `horus-trace stats` warns.
pub const META_DROPPED: &str = "dropped_records";

/// Meta key: the `N` of a 1-in-N [`SamplingSink`] capture (absent or `1` =
/// complete trace).  The trace→schedule bridge refuses traces with `N > 1`.
///
/// [`SamplingSink`]: horus_core::trace::SamplingSink
pub const META_SAMPLE_EVERY: &str = "sample_every";

/// Meta key: records deliberately discarded by sampling (reported, not
/// warned — the operator asked for the thinning).
pub const META_SAMPLED_OUT: &str = "sampled_out";

/// Meta key: the kind-name list a `FilterSink` capture admitted.
pub const META_KINDS: &str = "kinds";

/// One collected event: a [`TraceEvent`] plus the vector clock it was
/// recorded under (empty when the recording executor keeps no clocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Event time (virtual or executor-epoch-relative).
    pub at: SimTime,
    /// The endpoint the event concerns (`ep:0` for world-global events).
    pub ep: EndpointAddr,
    /// Vector clock of the causal context, `(endpoint raw, counter)` pairs.
    pub clock: Vec<ClockEntry>,
    /// What happened.
    pub kind: TraceKind,
}

// ---------------------------------------------------------------------------
// TraceBuf: the ordered virtual-time collector
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BufInner {
    events: Vec<TraceRecord>,
    clock: Vec<ClockEntry>,
}

/// An ordered, clock-stamping collector for the virtual-time simulator.
///
/// `SimWorld` calls [`TraceSink::set_clock`] as it enters each dispatch's
/// causal context; every record that follows is stamped with that clock, so
/// the collected log is causally annotated, not just time-ordered.  A plain
/// mutex is fine here: the simulator is single-threaded per world.
#[derive(Default)]
pub struct TraceBuf {
    inner: Mutex<BufInner>,
}

impl fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceBuf").field("len", &self.inner.lock().events.len()).finish()
    }
}

impl TraceBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// A copy of everything collected so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().events.clone()
    }
}

impl TraceSink for TraceBuf {
    fn record(&self, ev: TraceEvent) {
        let mut g = self.inner.lock();
        let clock = g.clock.clone();
        g.events.push(TraceRecord { at: ev.at, ep: ev.ep, clock, kind: ev.kind });
    }

    fn set_clock(&self, clock: &[ClockEntry]) {
        let mut g = self.inner.lock();
        g.clock.clear();
        g.clock.extend_from_slice(clock);
    }
}

// ---------------------------------------------------------------------------
// TraceRing: the lock-free real-time collector
// ---------------------------------------------------------------------------

struct RingSlot {
    /// Vyukov sequence word: `== pos` means free for the producer claiming
    /// `pos`; `== pos + 1` means occupied for the consumer expecting `pos`.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<TraceRecord>>,
}

/// A bounded lock-free MPMC ring (Vyukov's array queue) for the real-time
/// executors: every worker thread records straight into the ring; a
/// collector drains it during or after the run.  When full, the *newest*
/// record is dropped (and counted) — backpressure must never stall a
/// dispatch path.
pub struct TraceRing {
    slots: Box<[RingSlot]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are only accessed through the seq handshake below — a slot's
// value cell is touched exclusively by the single producer or consumer that
// won the CAS for its position.
unsafe impl Send for TraceRing {}
unsafe impl Sync for TraceRing {}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    /// Creates a ring holding at least `capacity` records (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[RingSlot]> = (0..cap)
            .map(|i| RingSlot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        TraceRing {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Enqueues one record; `false` (and a `dropped` bump) when full.
    pub fn push(&self, rec: TraceRecord) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes this thread the slot's sole
                        // producer until the seq store publishes it.
                        unsafe { (*slot.val.get()).write(rec) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest record, if any.
    pub fn pop(&self) -> Option<TraceRecord> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes this thread the slot's sole
                        // consumer; the producer published with Release.
                        let rec = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(rec);
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains everything currently in the ring, oldest first.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        while let Some(r) = self.pop() {
            out.push(r);
        }
        out
    }
}

impl Drop for TraceRing {
    fn drop(&mut self) {
        // Records own heap (view strings, notes, clocks): drain what the
        // consumer never took.
        while self.pop().is_some() {}
    }
}

impl TraceSink for TraceRing {
    fn record(&self, ev: TraceEvent) {
        // Real-time executors keep no vector clocks.
        self.push(TraceRecord { at: ev.at, ep: ev.ep, clock: Vec::new(), kind: ev.kind });
    }
}

// ---------------------------------------------------------------------------
// Trace file format
// ---------------------------------------------------------------------------

/// Percent-escapes a free-text value for the single-line format.
///
/// `%` is escaped because it is the escape character and space because it
/// is the field separator; beyond those, *every* whitespace and control
/// character is escaped byte-wise (each UTF-8 byte as `%XX` uppercase hex)
/// — the parser trims line ends, so a value ending in a tab or a Unicode
/// line separator would otherwise not round-trip.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut utf8 = [0u8; 4];
    for c in s.chars() {
        if c == '%' || c.is_whitespace() || c.is_control() {
            for b in c.encode_utf8(&mut utf8).as_bytes() {
                out.push_str(&format!("%{b:02X}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Reverses [`escape`]: decodes any `%XX` hex pair at the byte level (a
/// `%` not followed by two hex digits passes through verbatim, matching
/// what `escape` can emit).
pub(crate) fn unescape(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let hex = |b: u8| (b as char).to_digit(16).map(|d| d as u8);
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    // Escaping is byte-wise over valid UTF-8 and only ASCII is introduced,
    // so decoding what `escape` produced is valid UTF-8 again; arbitrary
    // hand-written input could still smuggle bad bytes — replace, don't
    // panic.
    String::from_utf8_lossy(&out).into_owned()
}

/// The kind-specific `key=value` fields of one record, in a stable order.
fn kind_fields(kind: &TraceKind) -> Vec<(&'static str, String)> {
    match kind {
        TraceKind::LayerDown { layer } | TraceKind::LayerUp { layer } => {
            vec![("layer", (*layer).to_string())]
        }
        TraceKind::LayerTimer { layer, token } => {
            vec![("layer", (*layer).to_string()), ("token", token.to_string())]
        }
        TraceKind::FrameSend { cast, bytes } => {
            vec![("cast", (*cast as u8).to_string()), ("bytes", bytes.to_string())]
        }
        TraceKind::FrameDeliver { from, cast, bytes, digest, seq } => vec![
            ("from", from.raw().to_string()),
            ("cast", (*cast as u8).to_string()),
            ("bytes", bytes.to_string()),
            ("digest", digest.to_string()),
            ("seq", seq.to_string()),
        ],
        TraceKind::FrameDrop { digest, seq, reason } => vec![
            ("digest", digest.to_string()),
            ("seq", seq.to_string()),
            ("reason", reason.name().to_string()),
        ],
        TraceKind::TimerArm { layer, token, delay_us } => vec![
            ("layer", layer.to_string()),
            ("token", token.to_string()),
            ("delay_us", delay_us.to_string()),
        ],
        TraceKind::TimerFire { layer, token, digest, seq } => vec![
            ("layer", layer.to_string()),
            ("token", token.to_string()),
            ("digest", digest.to_string()),
            ("seq", seq.to_string()),
        ],
        TraceKind::AppDown { kind, digest, seq } => vec![
            ("kind", (*kind).to_string()),
            ("digest", digest.to_string()),
            ("seq", seq.to_string()),
        ],
        TraceKind::Deliver { kind, src, digest } => vec![
            ("kind", (*kind).to_string()),
            ("src", src.to_string()),
            ("digest", digest.to_string()),
        ],
        TraceKind::ViewInstall { view } => vec![("view", escape(view))],
        TraceKind::Crash { digest, seq }
        | TraceKind::Partition { digest, seq }
        | TraceKind::Heal { digest, seq }
        | TraceKind::Fault { digest, seq } => {
            vec![("digest", digest.to_string()), ("seq", seq.to_string())]
        }
        TraceKind::Suspect { target, digest, seq } => vec![
            ("target", target.raw().to_string()),
            ("digest", digest.to_string()),
            ("seq", seq.to_string()),
        ],
        TraceKind::InjectCrash => vec![],
        TraceKind::InjectSuspect { observer, target } => {
            vec![("observer", observer.raw().to_string()), ("target", target.raw().to_string())]
        }
        TraceKind::Note(text) => vec![("text", escape(text))],
    }
}

/// Renders one record as its single line (no trailing newline).
pub fn record_line(rec: &TraceRecord) -> String {
    let vc = if rec.clock.is_empty() {
        "-".to_string()
    } else {
        rec.clock.iter().map(|(r, c)| format!("{r}:{c}")).collect::<Vec<_>>().join(",")
    };
    let mut line =
        format!("t={} ep={} vc={} {}", rec.at.as_nanos(), rec.ep.raw(), vc, rec.kind.name());
    for (k, v) in kind_fields(&rec.kind) {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&v);
    }
    line
}

/// Serializes a whole trace: header, `meta key: value` lines (in the given
/// order), then one line per record.
pub fn serialize_trace(meta: &[(String, String)], records: &[TraceRecord]) -> String {
    let mut out = String::new();
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for (k, v) in meta {
        out.push_str(&format!("meta {k}: {v}\n"));
    }
    for rec in records {
        out.push_str(&record_line(rec));
        out.push('\n');
    }
    out
}

/// One parsed trace line: the generic `key=value` view every consumer
/// (CLI, bridge, tests) works from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRecord {
    /// Event time in nanoseconds.
    pub at_ns: u64,
    /// Raw endpoint address (`0` = world-global).
    pub ep: u64,
    /// Vector clock, empty when the line carried `vc=-`.
    pub clock: Vec<(u64, u64)>,
    /// The kind name (`frame-deliver`, `timer-fire`, ...).
    pub kind: String,
    /// Kind-specific fields, still escaped.
    pub fields: BTreeMap<String, String>,
}

impl ParsedRecord {
    /// A numeric field.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(|v| v.parse().ok())
    }

    /// A free-text field, unescaped.
    pub fn text_field(&self, key: &str) -> Option<String> {
        self.fields.get(key).map(|v| unescape(v))
    }
}

/// A parsed trace file: metadata plus records in file order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedTrace {
    /// The `meta key: value` lines.
    pub meta: BTreeMap<String, String>,
    /// The records.
    pub records: Vec<ParsedRecord>,
}

/// Parses a trace file produced by [`serialize_trace`].
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == TRACE_HEADER => {}
        other => return Err(format!("bad trace header: {other:?}")),
    }
    let mut out = ParsedTrace::default();
    for (i, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("meta ") {
            let (k, v) =
                rest.split_once(':').ok_or_else(|| format!("line {}: meta without ':'", i + 2))?;
            out.meta.insert(k.trim().to_string(), v.trim().to_string());
            continue;
        }
        out.records.push(parse_record_line(line).map_err(|e| format!("line {}: {e}", i + 2))?);
    }
    Ok(out)
}

fn parse_record_line(line: &str) -> Result<ParsedRecord, String> {
    let mut parts = line.split(' ');
    let t = parts.next().and_then(|p| p.strip_prefix("t=")).ok_or("missing t=")?;
    let ep = parts.next().and_then(|p| p.strip_prefix("ep=")).ok_or("missing ep=")?;
    let vc = parts.next().and_then(|p| p.strip_prefix("vc=")).ok_or("missing vc=")?;
    let kind = parts.next().ok_or("missing kind")?;
    let mut clock = Vec::new();
    if vc != "-" {
        for comp in vc.split(',') {
            let (r, c) = comp.split_once(':').ok_or("bad vc component")?;
            clock.push((
                r.parse().map_err(|_| "bad vc actor")?,
                c.parse().map_err(|_| "bad vc count")?,
            ));
        }
    }
    let mut fields = BTreeMap::new();
    for p in parts {
        let (k, v) = p.split_once('=').ok_or_else(|| format!("bad field {p:?}"))?;
        fields.insert(k.to_string(), v.to_string());
    }
    Ok(ParsedRecord {
        at_ns: t.parse().map_err(|_| "bad t")?,
        ep: ep.parse().map_err(|_| "bad ep")?,
        clock,
        kind: kind.to_string(),
        fields,
    })
}

/// The parsed (`key=value`) view of one collected record — the same view
/// `serialize_trace` + `parse_trace` would produce, without the text trip.
/// Both file formats serialize from this view, which is what makes the
/// v1↔v2 round trip lossless by construction.
pub fn parsed_from_record(rec: &TraceRecord) -> ParsedRecord {
    ParsedRecord {
        at_ns: rec.at.as_nanos(),
        ep: rec.ep.raw(),
        clock: rec.clock.clone(),
        kind: rec.kind.name().to_string(),
        fields: kind_fields(&rec.kind).into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    }
}

/// Renders one parsed record as its v1 line (no trailing newline).
///
/// Fields come out in the canonical per-kind order when the kind is in the
/// vocabulary (sorted otherwise), so a record that came from
/// [`parse_trace`] re-renders byte-identically — the property the
/// `convert` CLI's v1→v2→v1 loop leans on.
pub fn parsed_line(rec: &ParsedRecord) -> String {
    let vc = if rec.clock.is_empty() {
        "-".to_string()
    } else {
        rec.clock.iter().map(|(r, c)| format!("{r}:{c}")).collect::<Vec<_>>().join(",")
    };
    let mut line = format!("t={} ep={} vc={} {}", rec.at_ns, rec.ep, vc, rec.kind);
    let canonical: Vec<&str> = match v2::schema_keys(&rec.kind) {
        Some(keys)
            if keys.len() == rec.fields.len()
                && keys.iter().all(|k| rec.fields.contains_key(*k)) =>
        {
            keys
        }
        _ => rec.fields.keys().map(String::as_str).collect(),
    };
    for k in canonical {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(&rec.fields[k]);
    }
    line
}

/// Serializes a parsed trace back to v1 text (meta in key order).
pub fn serialize_parsed(trace: &ParsedTrace) -> String {
    let mut out = String::new();
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for (k, v) in &trace.meta {
        out.push_str(&format!("meta {k}: {v}\n"));
    }
    for rec in &trace.records {
        out.push_str(&parsed_line(rec));
        out.push('\n');
    }
    out
}

/// Where two record streams first differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first record present in one stream but not equal in
    /// (or absent from) the other.
    pub index: usize,
    /// Kind at `index` on the left (`None` = left ended first).
    pub left: Option<String>,
    /// Kind at `index` on the right (`None` = right ended first).
    pub right: Option<String>,
}

/// The first index at which two record streams diverge, with the kinds on
/// each side — `None` when they are identical.  This is record-level
/// (timestamps included), so it is strictly stricter than the delivery
/// projection `diff` judges by; the CLI prints it as the debugging pointer
/// when traces disagree.
pub fn first_divergence(a: &[ParsedRecord], b: &[ParsedRecord]) -> Option<Divergence> {
    let index = a.iter().zip(b).position(|(ra, rb)| ra != rb).unwrap_or(a.len().min(b.len()));
    if index == a.len() && index == b.len() {
        return None;
    }
    Some(Divergence {
        index,
        left: a.get(index).map(|r| r.kind.clone()),
        right: b.get(index).map(|r| r.kind.clone()),
    })
}

// ---------------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------------

/// Renders records as a Chrome `about:tracing` / Perfetto JSON document:
/// one instant event per record (`ts` in microseconds, `tid` = endpoint),
/// with the kind-specific fields as `args`.
pub fn chrome_trace(records: &[ParsedRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let us = r.at_ns as f64 / 1000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{us},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{",
            r.kind, r.ep
        ));
        for (j, (k, v)) in r.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{k}\":\"{}\"",
                unescape(v).replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// Canonical projections
// ---------------------------------------------------------------------------

/// The executor-independent canonical view of a trace: for every
/// `(receiver, sender)` pair, the sequence of CAST content digests the
/// receiver's stack delivered from that sender, in delivery order.
///
/// Per-sender FIFO holds on every executor (the simulated calendar, the
/// loopback channel, and the shard queues all preserve a single sender's
/// order toward a single receiver), while cross-sender interleaving is
/// scheduling noise — so this is exactly the part of a trace that must be
/// equal across executors for the same workload.
pub fn delivery_projection(records: &[ParsedRecord]) -> BTreeMap<(u64, u64), Vec<u64>> {
    let mut out: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
    for r in records {
        if r.kind != "deliver" {
            continue;
        }
        if r.fields.get("kind").map(String::as_str) != Some("CAST") {
            continue;
        }
        let (Some(src), Some(digest)) = (r.u64_field("src"), r.u64_field("digest")) else {
            continue;
        };
        out.entry((r.ep, src)).or_default().push(digest);
    }
    out
}

/// Per-kind record counts (the cheap summary `stats` and `diff` lean on).
pub fn kind_counts(records: &[ParsedRecord]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for r in records {
        *out.entry(r.kind.clone()).or_insert(0) += 1;
    }
    out
}

/// A drop-reason helper for consumers that want typed reasons back.
pub fn parse_drop_reason(name: &str) -> Option<DropReason> {
    Some(match name {
        "decode" => DropReason::Decode,
        "fingerprint" => DropReason::Fingerprint,
        "induced" => DropReason::Induced,
        "loss" => DropReason::Loss,
        "partition" => DropReason::Partition,
        "mtu" => DropReason::Mtu,
        "unroutable" => DropReason::Unroutable,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rec(at_ns: u64, ep: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            ep: EndpointAddr::new(ep),
            clock: vec![(1, 2), (2, 1)],
            kind,
        }
    }

    #[test]
    fn buf_stamps_the_announced_clock() {
        let buf = TraceBuf::new();
        buf.set_clock(&[(7, 3)]);
        buf.record(TraceEvent {
            at: SimTime::from_nanos(5),
            ep: EndpointAddr::new(1),
            kind: TraceKind::InjectCrash,
        });
        let got = buf.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].clock, vec![(7, 3)]);
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_is_fifo_and_drops_newest_when_full() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(rec(i, 1, TraceKind::InjectCrash)));
        }
        assert!(!ring.push(rec(9, 1, TraceKind::InjectCrash)), "full ring must refuse");
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(drained[0].at.as_nanos(), 0);
        assert_eq!(drained[3].at.as_nanos(), 3);
    }

    #[test]
    fn ring_survives_concurrent_producers() {
        let ring = Arc::new(TraceRing::with_capacity(1 << 12));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    ring.push(rec(i, tid + 1, TraceKind::InjectCrash));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 2000);
        assert_eq!(ring.dropped(), 0);
        // Per-producer FIFO survives interleaving.
        for tid in 1..=4u64 {
            let seq: Vec<u64> =
                drained.iter().filter(|r| r.ep.raw() == tid).map(|r| r.at.as_nanos()).collect();
            assert_eq!(seq, (0..500).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let records = vec![
            rec(
                1000,
                2,
                TraceKind::FrameDeliver {
                    from: EndpointAddr::new(1),
                    cast: true,
                    bytes: 64,
                    digest: 0xdead,
                    seq: 17,
                },
            ),
            rec(2000, 2, TraceKind::ViewInstall { view: "g:1[v2@ep:1 ep:1 ep:2]".into() }),
            rec(3000, 2, TraceKind::Note("hello world\n100%".into())),
        ];
        let meta = vec![("scenario".to_string(), "wedge".to_string())];
        let text = serialize_trace(&meta, &records);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.meta.get("scenario").unwrap(), "wedge");
        assert_eq!(parsed.records.len(), 3);
        let d = &parsed.records[0];
        assert_eq!(d.kind, "frame-deliver");
        assert_eq!(d.at_ns, 1000);
        assert_eq!(d.ep, 2);
        assert_eq!(d.clock, vec![(1, 2), (2, 1)]);
        assert_eq!(d.u64_field("from"), Some(1));
        assert_eq!(d.u64_field("digest"), Some(0xdead));
        assert_eq!(d.u64_field("seq"), Some(17));
        assert_eq!(parsed.records[1].text_field("view").unwrap(), "g:1[v2@ep:1 ep:1 ep:2]");
        assert_eq!(parsed.records[2].text_field("text").unwrap(), "hello world\n100%");
        // Determinism: serializing the parse input again is byte-identical.
        assert_eq!(serialize_trace(&meta, &records), text);
    }

    #[test]
    fn projection_groups_casts_per_sender() {
        let records = vec![
            rec(1, 2, TraceKind::Deliver { kind: "CAST", src: 1, digest: 11 }),
            rec(2, 2, TraceKind::Deliver { kind: "CAST", src: 3, digest: 31 }),
            rec(3, 2, TraceKind::Deliver { kind: "CAST", src: 1, digest: 12 }),
            rec(4, 2, TraceKind::Deliver { kind: "VIEW", src: 0, digest: 0 }),
        ];
        let text = serialize_trace(&[], &records);
        let parsed = parse_trace(&text).unwrap();
        let proj = delivery_projection(&parsed.records);
        assert_eq!(proj[&(2, 1)], vec![11, 12]);
        assert_eq!(proj[&(2, 3)], vec![31]);
        assert!(!proj.contains_key(&(2, 0)));
    }

    #[test]
    fn chrome_export_is_valid_shaped_json() {
        let records = vec![rec(1500, 1, TraceKind::FrameSend { cast: true, bytes: 9 })];
        let text = serialize_trace(&[], &records);
        let parsed = parse_trace(&text).unwrap();
        let json = chrome_trace(&parsed.records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"frame-send\""));
        assert!(json.contains("\"ts\":1.5"));
        assert!(json.contains("\"tid\":1"));
    }
}
