//! `horus-trace` — inspect trace files produced by the Horus executors.
//!
//! ```text
//! horus-trace dump <file> [--chrome] [--ep N] [--kind NAME]
//! horus-trace stats <file> [--latency]
//! horus-trace diff <a> <b>
//! horus-trace export <file> [--prometheus]
//! horus-trace convert <file> --format v1|v2 [--out FILE]
//! ```
//!
//! Every subcommand auto-detects the file format (v1 text or v2 binary).
//! `dump` prints records (optionally filtered, or as Chrome-trace JSON for
//! `about:tracing` / Perfetto).  `stats` summarizes a trace; `--latency`
//! adds the per-(endpoint, layer) dwell and timer-latency histograms.
//! `diff` compares the canonical delivery projections of two traces — exit
//! 0 when they agree, 2 when they drift (timestamps and scheduling noise
//! are deliberately ignored; see `delivery_projection`) — and points at
//! the first diverging record for debugging.  `export` renders a
//! Prometheus-style text exposition; `convert` rewrites between formats.

use horus_trace::{
    chrome_trace, delivery_projection, first_divergence, kind_counts, latency_stats,
    metrics::prometheus_text, parse_trace_any, parsed_line, serialize_parsed, trace_to_v2,
    Histogram, LatencyStats, ParsedTrace, META_DROPPED, META_SAMPLED_OUT, META_SAMPLE_EVERY,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: horus-trace dump <file> [--chrome] [--ep N] [--kind NAME]");
    eprintln!("       horus-trace stats <file> [--latency]");
    eprintln!("       horus-trace diff <a> <b>");
    eprintln!("       horus-trace export <file> [--prometheus]");
    eprintln!("       horus-trace convert <file> --format v1|v2 [--out FILE]");
    ExitCode::from(1)
}

fn load(path: &str) -> Result<ParsedTrace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace_any(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "dump" => cmd_dump(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        _ => usage(),
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut chrome = false;
    let mut ep_filter = None;
    let mut kind_filter = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "--ep" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => ep_filter = Some(v),
                None => return usage(),
            },
            "--kind" => match it.next() {
                Some(v) => kind_filter = Some(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let mut trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    trace.records.retain(|r| {
        ep_filter.is_none_or(|ep| r.ep == ep) && kind_filter.as_deref().is_none_or(|k| r.kind == k)
    });
    // File order is already dispatch order under virtual time; the ring
    // collectors may interleave shards, so present by timestamp.
    trace.records.sort_by_key(|r| r.at_ns);
    if chrome {
        print!("{}", chrome_trace(&trace.records));
        return ExitCode::SUCCESS;
    }
    for (k, v) in &trace.meta {
        println!("meta {k}: {v}");
    }
    for r in &trace.records {
        let vc = if r.clock.is_empty() {
            "-".to_string()
        } else {
            r.clock.iter().map(|(a, c)| format!("{a}:{c}")).collect::<Vec<_>>().join(",")
        };
        let fields = r
            .fields
            .keys()
            .map(|k| format!("{k}={}", r.text_field(k).unwrap_or_default()))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:>12}ns ep:{} vc={} {} {}", r.at_ns, r.ep, vc, r.kind, fields);
    }
    ExitCode::SUCCESS
}

/// Capture-health lines shared by `stats` and `export`: sampling is
/// reported (the operator asked for it), ring overflow is *warned* — those
/// records are holes nobody chose.
fn report_capture_health(trace: &ParsedTrace) {
    if let Some(every) = trace.meta.get(META_SAMPLE_EVERY).and_then(|v| v.parse::<u64>().ok()) {
        if every > 1 {
            let out = trace.meta.get(META_SAMPLED_OUT).map(String::as_str).unwrap_or("?");
            println!("sampling: 1-in-{every} ({out} records sampled out at capture)");
        }
    }
    match trace.meta.get(META_DROPPED).and_then(|v| v.parse::<u64>().ok()) {
        Some(0) | None => {}
        Some(d) => {
            println!("dropped: {d}");
            eprintln!(
                "warning: collector dropped {d} records (ring overflow) — \
                 this trace has holes; resize the ring or sample harder"
            );
        }
    }
}

fn print_histogram_table(title: &str, map: &BTreeMap<(u64, String), Histogram>) {
    if map.is_empty() {
        return;
    }
    println!("{title}:");
    println!(
        "  {:<6} {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "ep", "layer", "count", "p50", "p90", "p99", "max"
    );
    let row = |ep: &str, layer: &str, h: &Histogram| {
        println!(
            "  {:<6} {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            ep,
            layer,
            h.count(),
            h.quantile(50, 100),
            h.quantile(90, 100),
            h.quantile(99, 100),
            h.max()
        );
    };
    for ((ep, layer), h) in map {
        row(&ep.to_string(), layer, h);
    }
    for (layer, h) in LatencyStats::aggregate(map) {
        row("all", &layer, &h);
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut latency = false;
    for a in args {
        match a.as_str() {
            "--latency" => latency = true,
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    for (k, v) in &trace.meta {
        println!("meta {k}: {v}");
    }
    let n = trace.records.len();
    println!("records: {n}");
    report_capture_health(&trace);
    if n > 0 {
        let lo = trace.records.iter().map(|r| r.at_ns).min().unwrap();
        let hi = trace.records.iter().map(|r| r.at_ns).max().unwrap();
        println!("span: {lo}ns .. {hi}ns ({}us)", (hi - lo) / 1000);
    }
    println!("by kind:");
    for (kind, count) in kind_counts(&trace.records) {
        println!("  {kind:<16} {count}");
    }
    let mut by_ep: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &trace.records {
        *by_ep.entry(r.ep).or_insert(0) += 1;
    }
    println!("by endpoint:");
    for (ep, count) in by_ep {
        println!("  ep:{ep:<14} {count}");
    }
    let proj = delivery_projection(&trace.records);
    if !proj.is_empty() {
        println!("delivery streams:");
        for ((rx, tx), digests) in proj {
            println!("  ep:{tx} -> ep:{rx}  {} casts", digests.len());
        }
    }
    if latency {
        let stats = latency_stats(&trace.records);
        if stats.is_empty() {
            println!("latency: no layer crossings in this trace");
        } else {
            print_histogram_table("latency: layer dwell (ns)", &stats.dwell);
            print_histogram_table("latency: timer arm->fire (ns)", &stats.timer);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a_path, b_path] = args else { return usage() };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let (pa, pb) = (delivery_projection(&a.records), delivery_projection(&b.records));
    let mut drift = false;
    for key in pa.keys().chain(pb.keys()) {
        let (va, vb) = (pa.get(key), pb.get(key));
        if va != vb {
            drift = true;
            println!(
                "stream ep:{} -> ep:{} differs: {} vs {} casts",
                key.1,
                key.0,
                va.map_or(0, Vec::len),
                vb.map_or(0, Vec::len)
            );
        }
    }
    let (ka, kb) = (kind_counts(&a.records), kind_counts(&b.records));
    if ka != kb {
        println!("kind counts differ:");
        for kind in ka.keys().chain(kb.keys()) {
            let (ca, cb) = (ka.get(kind).copied().unwrap_or(0), kb.get(kind).copied().unwrap_or(0));
            if ca != cb {
                println!("  {kind:<16} {ca} vs {cb}");
            }
        }
    }
    // The debugging pointer: where, record for record, do the streams
    // first disagree?  Stricter than the projection (timestamps count), so
    // it can be Some even when the verdict below is "match".
    if let Some(d) = first_divergence(&a.records, &b.records) {
        println!(
            "records first diverge at index {} ({} vs {}):",
            d.index,
            d.left.as_deref().unwrap_or("end-of-trace"),
            d.right.as_deref().unwrap_or("end-of-trace"),
        );
        for (name, trace) in [("a", &a), ("b", &b)] {
            match trace.records.get(d.index) {
                Some(r) => println!("  {name}: {}", parsed_line(r)),
                None => println!("  {name}: <ended after {} records>", trace.records.len()),
            }
        }
    }
    if drift {
        println!("traces DIVERGE");
        ExitCode::from(2)
    } else {
        println!("delivery projections match ({} streams)", pa.len());
        ExitCode::SUCCESS
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let mut file = None;
    for a in args {
        match a.as_str() {
            // The only exposition today; accepted explicitly so scripts
            // can say what they mean.
            "--prometheus" => {}
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let latency = latency_stats(&trace.records);
    let kinds: BTreeMap<String, u64> = kind_counts(&trace.records);
    print!("{}", prometheus_text(&latency, &kinds, &trace.meta));
    ExitCode::SUCCESS
}

fn cmd_convert(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut format = None;
    let mut out_path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("v1" | "v2")) => format = Some(f.to_string()),
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => return usage(),
            },
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let (Some(file), Some(format)) = (file, format) else { return usage() };
    let trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let bytes = match format.as_str() {
        "v1" => serialize_parsed(&trace).into_bytes(),
        _ => trace_to_v2(&trace),
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &bytes) {
                eprintln!("error: {p}: {e}");
                return ExitCode::from(1);
            }
            eprintln!("wrote {} bytes ({format}) to {p}", bytes.len());
        }
        None => {
            use std::io::Write as _;
            if std::io::stdout().write_all(&bytes).is_err() {
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
