//! `horus-trace` — inspect trace files produced by the Horus executors.
//!
//! ```text
//! horus-trace dump <file> [--chrome] [--ep N] [--kind NAME]
//! horus-trace stats <file>
//! horus-trace diff <a> <b>
//! ```
//!
//! `dump` prints records (optionally filtered, or as Chrome-trace JSON for
//! `about:tracing` / Perfetto).  `stats` summarizes a trace.  `diff`
//! compares the canonical delivery projections of two traces — exit 0 when
//! they agree, 2 when they drift (timestamps and scheduling noise are
//! deliberately ignored; see `delivery_projection`).

use horus_trace::{chrome_trace, delivery_projection, kind_counts, parse_trace, ParsedTrace};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: horus-trace dump <file> [--chrome] [--ep N] [--kind NAME]");
    eprintln!("       horus-trace stats <file>");
    eprintln!("       horus-trace diff <a> <b>");
    ExitCode::from(1)
}

fn load(path: &str) -> Result<ParsedTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "dump" => cmd_dump(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        _ => usage(),
    }
}

fn cmd_dump(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut chrome = false;
    let mut ep_filter = None;
    let mut kind_filter = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "--ep" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => ep_filter = Some(v),
                None => return usage(),
            },
            "--kind" => match it.next() {
                Some(v) => kind_filter = Some(v.clone()),
                None => return usage(),
            },
            _ if file.is_none() => file = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let mut trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    trace.records.retain(|r| {
        ep_filter.is_none_or(|ep| r.ep == ep) && kind_filter.as_deref().is_none_or(|k| r.kind == k)
    });
    // File order is already dispatch order under virtual time; the ring
    // collectors may interleave shards, so present by timestamp.
    trace.records.sort_by_key(|r| r.at_ns);
    if chrome {
        print!("{}", chrome_trace(&trace.records));
        return ExitCode::SUCCESS;
    }
    for (k, v) in &trace.meta {
        println!("meta {k}: {v}");
    }
    for r in &trace.records {
        let vc = if r.clock.is_empty() {
            "-".to_string()
        } else {
            r.clock.iter().map(|(a, c)| format!("{a}:{c}")).collect::<Vec<_>>().join(",")
        };
        let fields = r
            .fields
            .keys()
            .map(|k| format!("{k}={}", r.text_field(k).unwrap_or_default()))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:>12}ns ep:{} vc={} {} {}", r.at_ns, r.ep, vc, r.kind, fields);
    }
    ExitCode::SUCCESS
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let [file] = args else { return usage() };
    let trace = match load(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    for (k, v) in &trace.meta {
        println!("meta {k}: {v}");
    }
    let n = trace.records.len();
    println!("records: {n}");
    if n > 0 {
        let lo = trace.records.iter().map(|r| r.at_ns).min().unwrap();
        let hi = trace.records.iter().map(|r| r.at_ns).max().unwrap();
        println!("span: {lo}ns .. {hi}ns ({}us)", (hi - lo) / 1000);
    }
    println!("by kind:");
    for (kind, count) in kind_counts(&trace.records) {
        println!("  {kind:<16} {count}");
    }
    let mut by_ep: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &trace.records {
        *by_ep.entry(r.ep).or_insert(0) += 1;
    }
    println!("by endpoint:");
    for (ep, count) in by_ep {
        println!("  ep:{ep:<14} {count}");
    }
    let proj = delivery_projection(&trace.records);
    if !proj.is_empty() {
        println!("delivery streams:");
        for ((rx, tx), digests) in proj {
            println!("  ep:{tx} -> ep:{rx}  {} casts", digests.len());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a_path, b_path] = args else { return usage() };
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let (pa, pb) = (delivery_projection(&a.records), delivery_projection(&b.records));
    let mut drift = false;
    for key in pa.keys().chain(pb.keys()) {
        let (va, vb) = (pa.get(key), pb.get(key));
        if va != vb {
            drift = true;
            println!(
                "stream ep:{} -> ep:{} differs: {} vs {} casts",
                key.1,
                key.0,
                va.map_or(0, Vec::len),
                vb.map_or(0, Vec::len)
            );
        }
    }
    let (ka, kb) = (kind_counts(&a.records), kind_counts(&b.records));
    if ka != kb {
        println!("kind counts differ:");
        for kind in ka.keys().chain(kb.keys()) {
            let (ca, cb) = (ka.get(kind).copied().unwrap_or(0), kb.get(kind).copied().unwrap_or(0));
            if ca != cb {
                println!("  {kind:<16} {ca} vs {cb}");
            }
        }
    }
    if drift {
        println!("traces DIVERGE");
        ExitCode::from(2)
    } else {
        println!("delivery projections match ({} streams)", pa.len());
        ExitCode::SUCCESS
    }
}
