//! Per-layer latency histograms — offline from a parsed trace, or live
//! through a [`MetricsSink`] — plus a Prometheus-style text exposition.
//!
//! ## The histogram
//!
//! [`Histogram`] is log-bucketed: 4 sub-buckets per power-of-two octave
//! (values 0–3 get exact buckets), 252 buckets total covering all of
//! `u64`.  A bucket's width is at most a quarter of its lower bound, so
//! any reported quantile is within 25% of the true value — and recording
//! is two shifts, a mask, and an increment, with no allocation after the
//! first record (see DESIGN decision 11).  Quantiles use integer rank
//! arithmetic and report the bucket's lower bound, so the same samples
//! always render the same digits: `stats --latency` output is
//! byte-reproducible.
//!
//! ## What is measured
//!
//! **Layer dwell**: a `layer-down`/`layer-up`/`layer-timer` record opens an
//! interval for its endpoint that the *next* record of the same dispatch
//! closes — the time the item spent inside that layer's handler plus the
//! queue hop to the next crossing.  Records that *start* a new dispatch
//! (`frame-deliver`, `timer-fire`, `app-down`, and every fault kind)
//! discard the open interval instead: the gap to them is idle time between
//! dispatches, not dwell, and must not pollute the histograms.
//!
//! **Timer latency**: `timer-arm` → `timer-fire` pairs, keyed by
//! `(endpoint, layer index, token)`; the arm records only the layer's
//! *index*, so the latency is attributed to a layer *name* by the
//! `layer-timer` crossing that follows the fire.

use crate::{ParsedRecord, META_DROPPED};
use horus_core::stack::StackStats;
use horus_core::trace::{ClockEntry, TraceEvent, TraceKind, TraceSink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of buckets: 4 exact small-value buckets plus 4 sub-buckets for
/// each of the 62 octaves `[2^o, 2^(o+1))`, `o = 2..=63`.
pub const BUCKETS: usize = 252;

/// A log-bucketed histogram of `u64` samples (nanoseconds, in this crate's
/// use) with ≤ 25% relative quantile error.  See the module docs and
/// DESIGN decision 11 for the bucket scheme.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Lazily sized to [`BUCKETS`] on first record, so an empty histogram
    /// is allocation-free.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index of `v`.
    fn bucket(v: u64) -> usize {
        if v < 4 {
            v as usize
        } else {
            let octave = 63 - v.leading_zeros() as u64;
            (4 * (octave - 1) + ((v >> (octave - 2)) & 3)) as usize
        }
    }

    /// The smallest value that lands in bucket `i` — what quantiles report.
    fn bucket_floor(i: usize) -> u64 {
        if i < 4 {
            i as u64
        } else {
            let octave = (i / 4 + 1) as u32;
            (1u64 << octave) + (i % 4) as u64 * (1u64 << (octave - 2))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `num/den` quantile as the lower bound of the bucket holding the
    /// rank-`⌈count·num/den⌉` sample, clamped to [`max`](Self::max) — pure
    /// integer arithmetic, so the answer is deterministic down to the
    /// digit.  Returns 0 when empty.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target =
            ((u128::from(self.count) * u128::from(num)).div_ceil(u128::from(den.max(1)))).max(1);
        let mut seen = 0u128;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u128::from(c);
            if seen >= target {
                return Self::bucket_floor(i).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// The dwell/timer state machine
// ---------------------------------------------------------------------------

/// Shared classifier driving both the offline [`latency_stats`] pass and
/// the live [`MetricsSink`]: feed it the per-record calls and collect the
/// histograms at the end.  `K` is the layer-name type (`String` offline,
/// `&'static str` live) so the hot path never allocates.
#[derive(Debug, Clone)]
struct LatencyTracker<K: Ord + Clone> {
    /// Per endpoint: the open dwell interval (layer, opened-at).
    pending: BTreeMap<u64, (K, u64)>,
    /// Armed timers by `(ep, layer index, token)` → armed-at.
    armed: BTreeMap<(u64, u64, u64), u64>,
    /// Per endpoint: a fire latency awaiting its naming `layer-timer`.
    fired: BTreeMap<u64, u64>,
    dwell: BTreeMap<(u64, K), Histogram>,
    timer: BTreeMap<(u64, K), Histogram>,
}

impl<K: Ord + Clone> Default for LatencyTracker<K> {
    fn default() -> Self {
        LatencyTracker {
            pending: BTreeMap::new(),
            armed: BTreeMap::new(),
            fired: BTreeMap::new(),
            dwell: BTreeMap::new(),
            timer: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Clone> LatencyTracker<K> {
    /// Closes the open dwell interval, attributing the gap to its layer.
    fn close(&mut self, ep: u64, at: u64) {
        if let Some((layer, opened)) = self.pending.remove(&ep) {
            self.dwell.entry((ep, layer)).or_default().record(at.saturating_sub(opened));
        }
    }

    /// A layer crossing: closes the previous interval and opens a new one.
    fn crossing(&mut self, ep: u64, at: u64, layer: K) {
        self.close(ep, at);
        self.pending.insert(ep, (layer, at));
    }

    /// The `layer-timer` crossing: additionally resolves a pending fire
    /// latency to this layer's name.
    fn layer_timer(&mut self, ep: u64, at: u64, layer: K) {
        if let Some(lat) = self.fired.remove(&ep) {
            self.timer.entry((ep, layer.clone())).or_default().record(lat);
        }
        self.crossing(ep, at, layer);
    }

    /// A same-dispatch record that is not a crossing: closes without
    /// reopening.
    fn continuation(&mut self, ep: u64, at: u64) {
        self.close(ep, at);
    }

    /// A record that starts a new dispatch: the gap to it is idle time —
    /// discard the open interval (and any stale unresolved fire).
    fn entry(&mut self, ep: u64) {
        self.pending.remove(&ep);
        self.fired.remove(&ep);
    }

    fn arm(&mut self, ep: u64, layer: u64, token: u64, at: u64) {
        // Bound the table: timers cancelled without firing would otherwise
        // accumulate over a long soak.
        if self.armed.len() >= 8192 {
            self.armed.pop_first();
        }
        self.armed.insert((ep, layer, token), at);
    }

    fn fire(&mut self, ep: u64, layer: u64, token: u64, at: u64) {
        if let Some(armed_at) = self.armed.remove(&(ep, layer, token)) {
            self.fired.insert(ep, at.saturating_sub(armed_at));
        }
    }
}

impl<K: Ord + Clone + Into<String>> LatencyTracker<K> {
    fn finish(self) -> LatencyStats {
        LatencyStats {
            dwell: self.dwell.into_iter().map(|((ep, k), h)| ((ep, k.into()), h)).collect(),
            timer: self.timer.into_iter().map(|((ep, k), h)| ((ep, k.into()), h)).collect(),
        }
    }
}

/// Per-`(endpoint, layer)` latency histograms extracted from a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Layer dwell time (ns), keyed by `(endpoint, layer name)`.
    pub dwell: BTreeMap<(u64, String), Histogram>,
    /// Timer arm→fire latency (ns), keyed by `(endpoint, layer name)`.
    pub timer: BTreeMap<(u64, String), Histogram>,
}

impl LatencyStats {
    /// Whether nothing was measured.
    pub fn is_empty(&self) -> bool {
        self.dwell.is_empty() && self.timer.is_empty()
    }

    /// Adds `other`'s histograms into `self`.
    pub fn merge_from(&mut self, other: &LatencyStats) {
        for (map, omap) in [(&mut self.dwell, &other.dwell), (&mut self.timer, &other.timer)] {
            for (k, h) in omap {
                map.entry(k.clone()).or_default().merge(h);
            }
        }
    }

    /// Collapses a per-`(endpoint, layer)` map across endpoints.
    pub fn aggregate(map: &BTreeMap<(u64, String), Histogram>) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for ((_, layer), h) in map {
            out.entry(layer.clone()).or_default().merge(h);
        }
        out
    }
}

/// The offline pass: per-layer dwell and timer-latency histograms from a
/// parsed trace's records (see the module docs for the interval semantics).
pub fn latency_stats(records: &[ParsedRecord]) -> LatencyStats {
    let mut t = LatencyTracker::<String>::default();
    for r in records {
        match r.kind.as_str() {
            "layer-down" | "layer-up" => {
                if let Some(layer) = r.text_field("layer") {
                    t.crossing(r.ep, r.at_ns, layer);
                }
            }
            "layer-timer" => {
                if let Some(layer) = r.text_field("layer") {
                    t.layer_timer(r.ep, r.at_ns, layer);
                }
            }
            "timer-arm" => {
                t.continuation(r.ep, r.at_ns);
                if let (Some(layer), Some(token)) = (r.u64_field("layer"), r.u64_field("token")) {
                    t.arm(r.ep, layer, token, r.at_ns);
                }
            }
            "timer-fire" => {
                t.entry(r.ep);
                if let (Some(layer), Some(token)) = (r.u64_field("layer"), r.u64_field("token")) {
                    t.fire(r.ep, layer, token, r.at_ns);
                }
            }
            // Same-dispatch continuations: close the open interval.
            "frame-send" | "deliver" | "view-install" | "note" => t.continuation(r.ep, r.at_ns),
            // Everything else starts a new dispatch (frame-deliver,
            // app-down, crash/suspect/inject-*, partition/heal/fault,
            // frame-drop) — or is unknown, which we treat the same way:
            // discarding an interval can only under-count, never corrupt.
            _ => t.entry(r.ep),
        }
    }
    t.finish()
}

// ---------------------------------------------------------------------------
// MetricsSink: the live collector
// ---------------------------------------------------------------------------

const METRIC_SHARDS: usize = 16;

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    /// Each recording thread gets a stable shard slot on first use.
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[derive(Default, Clone)]
struct MetricsShard {
    tracker: LatencyTracker<&'static str>,
    kinds: BTreeMap<&'static str, u64>,
    records: u64,
}

/// A sink that maintains the [`latency_stats`] histograms *live* instead
/// of collecting records: nothing to drain, nothing to parse, constant
/// memory over an arbitrarily long run.
///
/// Sixteen shards, each locked only by the threads whose thread-local slot
/// hashes to it — one executor thread per shard in practice, so the lock
/// is uncontended and the hot path is an acquire/release pair plus a
/// histogram increment, with no allocation (layer names are `&'static`).
/// [`snapshot`](MetricsSink::snapshot) merges the shards.
///
/// Interval semantics are per-endpoint, so the numbers are exact whenever
/// each endpoint's records arrive in order — true on every executor (an
/// endpooint's dispatches are serialized) as long as one endpoint's events
/// are not split across sinks.
pub struct MetricsSink {
    shards: Box<[Mutex<MetricsShard>]>,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

impl fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsSink").field("shards", &self.shards.len()).finish()
    }
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MetricsSink { shards: (0..METRIC_SHARDS).map(|_| Mutex::default()).collect() }
    }

    /// Merged view of everything recorded so far: the latency histograms,
    /// per-kind record counts, and the total record count.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency = LatencyStats::default();
        let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
        let mut records = 0;
        for shard in &self.shards {
            let shard = shard.lock().clone();
            latency.merge_from(&shard.tracker.finish());
            for (k, c) in shard.kinds {
                *kinds.entry(k.to_string()).or_insert(0) += c;
            }
            records += shard.records;
        }
        MetricsSnapshot { latency, kinds, records }
    }
}

/// What [`MetricsSink::snapshot`] returns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The live-maintained latency histograms.
    pub latency: LatencyStats,
    /// Record counts by kind name.
    pub kinds: BTreeMap<String, u64>,
    /// Total records seen.
    pub records: u64,
}

impl TraceSink for MetricsSink {
    fn record(&self, ev: TraceEvent) {
        let slot = SLOT.with(|s| *s);
        let mut shard = self.shards[slot % METRIC_SHARDS].lock();
        let at = ev.at.as_nanos();
        let ep = ev.ep.raw();
        let t = &mut shard.tracker;
        match &ev.kind {
            TraceKind::LayerDown { layer } | TraceKind::LayerUp { layer } => {
                t.crossing(ep, at, layer);
            }
            TraceKind::LayerTimer { layer, .. } => t.layer_timer(ep, at, layer),
            TraceKind::TimerArm { layer, token, .. } => {
                t.continuation(ep, at);
                t.arm(ep, *layer as u64, *token, at);
            }
            TraceKind::TimerFire { layer, token, .. } => {
                t.entry(ep);
                t.fire(ep, *layer as u64, *token, at);
            }
            TraceKind::FrameSend { .. }
            | TraceKind::Deliver { .. }
            | TraceKind::ViewInstall { .. }
            | TraceKind::Note(_) => t.continuation(ep, at),
            _ => t.entry(ep),
        }
        *shard.kinds.entry(ev.kind.name()).or_insert(0) += 1;
        shard.records += 1;
    }

    fn set_clock(&self, _clock: &[ClockEntry]) {}
}

// ---------------------------------------------------------------------------
// Prometheus-style text exposition
// ---------------------------------------------------------------------------

fn put_summary(
    out: &mut String,
    family: &str,
    help: &str,
    map: &BTreeMap<(u64, String), Histogram>,
) {
    if map.is_empty() {
        return;
    }
    let _ = writeln!(out, "# HELP {family} {help}");
    let _ = writeln!(out, "# TYPE {family} summary");
    let rows: Vec<(String, &Histogram)> =
        map.iter().map(|((ep, layer), h)| (format!("ep=\"{ep}\",layer=\"{layer}\""), h)).collect();
    let agg = LatencyStats::aggregate(map);
    let agg_rows: Vec<(String, &Histogram)> =
        agg.iter().map(|(layer, h)| (format!("ep=\"all\",layer=\"{layer}\""), h)).collect();
    for (labels, h) in rows.iter().chain(&agg_rows) {
        for (name, num) in [("0.5", 50), ("0.9", 90), ("0.99", 99)] {
            let _ =
                writeln!(out, "{family}{{{labels},quantile=\"{name}\"}} {}", h.quantile(num, 100));
        }
        let _ = writeln!(out, "{family}_count{{{labels}}} {}", h.count());
        let _ = writeln!(out, "{family}_sum{{{labels}}} {}", h.sum());
        let _ = writeln!(out, "{family}_max{{{labels}}} {}", h.max());
    }
}

/// Renders latency histograms, per-kind counts, and capture metadata as a
/// Prometheus text exposition (`horus-trace export --prometheus`).
pub fn prometheus_text(
    latency: &LatencyStats,
    kinds: &BTreeMap<String, u64>,
    meta: &BTreeMap<String, String>,
) -> String {
    let mut out = String::new();
    put_summary(
        &mut out,
        "horus_layer_dwell_ns",
        "Time from a layer crossing to the next record of the same dispatch.",
        &latency.dwell,
    );
    put_summary(
        &mut out,
        "horus_timer_latency_ns",
        "Timer arm-to-fire latency, attributed to the owning layer.",
        &latency.timer,
    );
    if !kinds.is_empty() {
        let _ = writeln!(out, "# HELP horus_trace_records_total Trace records by kind.");
        let _ = writeln!(out, "# TYPE horus_trace_records_total counter");
        for (kind, count) in kinds {
            let _ = writeln!(out, "horus_trace_records_total{{kind=\"{kind}\"}} {count}");
        }
    }
    if let Some(d) = meta.get(META_DROPPED).and_then(|v| v.parse::<u64>().ok()) {
        let _ = writeln!(out, "# HELP horus_trace_dropped_total Records lost to ring overflow.");
        let _ = writeln!(out, "# TYPE horus_trace_dropped_total counter");
        let _ = writeln!(out, "horus_trace_dropped_total {d}");
    }
    out
}

/// Renders the always-on [`StackStats`] counters for one stack as
/// Prometheus gauges — the non-histogram half of the exposition.
pub fn prometheus_stack_stats(ep: u64, layer_names: &[&str], stats: &StackStats) -> String {
    let mut out = String::new();
    let pairs: [(&str, u64); 10] = [
        ("msgs_sent", stats.msgs_sent),
        ("msgs_received", stats.msgs_received),
        ("bytes_sent", stats.bytes_sent),
        ("bytes_received", stats.bytes_received),
        ("header_bytes_sent", stats.header_bytes_sent),
        ("dispatches", stats.dispatches),
        ("skipped", stats.skipped),
        ("batched_inputs", stats.batched_inputs),
        ("batches", stats.batches),
        ("scratch_peak", stats.scratch_peak),
    ];
    for (name, v) in pairs {
        let _ = writeln!(out, "horus_stack_{name}{{ep=\"{ep}\"}} {v}");
    }
    for (i, t) in stats.per_layer.iter().enumerate() {
        let layer = layer_names.get(i).copied().unwrap_or("?");
        for (dir, v) in [("down", t.downs), ("up", t.ups), ("timer", t.timers)] {
            let _ = writeln!(
                out,
                "horus_layer_dispatches{{ep=\"{ep}\",layer=\"{layer}\",dir=\"{dir}\"}} {v}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::addr::EndpointAddr;
    use horus_core::time::SimTime;

    #[test]
    fn buckets_partition_u64() {
        // Floors are strictly increasing and each value's bucket floor is
        // at most the value, with width ≤ floor/4.
        let mut prev = None;
        for i in 0..BUCKETS {
            let f = Histogram::bucket_floor(i);
            assert_eq!(Histogram::bucket(f), i, "floor of bucket {i} maps back");
            if let Some(p) = prev {
                assert!(f > p);
            }
            prev = Some(f);
        }
        for v in [0, 1, 3, 4, 5, 7, 8, 1000, u64::MAX / 3, u64::MAX] {
            let b = Histogram::bucket(v);
            let f = Histogram::bucket_floor(b);
            assert!(f <= v, "floor {f} > value {v}");
            assert!(v - f <= (f / 4).max(1), "bucket too wide at {v}");
        }
        assert_eq!(Histogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_lower_bounds_within_25_percent() {
        let mut h = Histogram::new();
        let vals: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + i).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &v in &vals {
            h.record(v);
        }
        for (num, den) in [(50, 100), (90, 100), (99, 100), (1, 1)] {
            let rank = ((sorted.len() as u64 * num).div_ceil(den)).max(1) as usize - 1;
            let exact = sorted[rank];
            let approx = h.quantile(num, den);
            assert!(approx <= exact, "q{num}/{den}: {approx} > exact {exact}");
            assert!(exact <= approx + (approx / 4).max(1), "q{num}/{den} off by >25%");
        }
        assert!(h.quantile(1, 1) <= h.max());
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..500u64 {
            let v = i * 37 % 1013;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram works too.
        let mut e = Histogram::new();
        e.merge(&all);
        assert_eq!(e, all);
    }

    fn ev(at: u64, ep: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_nanos(at), ep: EndpointAddr::new(ep), kind }
    }

    #[test]
    fn metrics_sink_tracks_dwell_and_timer_latency() {
        let sink = MetricsSink::new();
        // One dispatch: deliver a frame, cross two layers, send.
        sink.record(ev(
            100,
            1,
            TraceKind::FrameDeliver {
                from: EndpointAddr::new(2),
                cast: true,
                bytes: 8,
                digest: 0,
                seq: 0,
            },
        ));
        sink.record(ev(110, 1, TraceKind::LayerUp { layer: "COM" }));
        sink.record(ev(150, 1, TraceKind::LayerUp { layer: "NAK" }));
        sink.record(ev(170, 1, TraceKind::FrameSend { cast: true, bytes: 8 }));
        // Idle gap, then a timer: armed at 200 (in a fresh dispatch),
        // fires at 1200, crossing names the layer.
        sink.record(ev(200, 1, TraceKind::TimerArm { layer: 0, token: 7, delay_us: 1 }));
        sink.record(ev(1200, 1, TraceKind::TimerFire { layer: 0, token: 7, digest: 0, seq: 0 }));
        sink.record(ev(1210, 1, TraceKind::LayerTimer { layer: "NAK", token: 7 }));
        sink.record(ev(1215, 1, TraceKind::FrameSend { cast: true, bytes: 8 }));
        let snap = sink.snapshot();
        assert_eq!(snap.records, 8);
        let com = &snap.latency.dwell[&(1, "COM".to_string())];
        assert_eq!((com.count(), com.max()), (1, 40));
        // NAK dwell: 170-150 = 20 (first dispatch) and 1215-1210 = 5; the
        // idle gap 170→200 and 200→1200 never land in a histogram.
        let nak = &snap.latency.dwell[&(1, "NAK".to_string())];
        assert_eq!((nak.count(), nak.max()), (2, 20));
        let timer = &snap.latency.timer[&(1, "NAK".to_string())];
        assert_eq!((timer.count(), timer.max()), (1, 1000));
    }

    #[test]
    fn offline_pass_matches_the_live_sink() {
        use crate::{parse_trace, serialize_trace, TraceBuf};
        use std::sync::Arc;
        let events = [
            ev(10, 1, TraceKind::AppDown { kind: "CAST", digest: 1, seq: 1 }),
            ev(20, 1, TraceKind::LayerDown { layer: "NAK" }),
            ev(45, 1, TraceKind::LayerDown { layer: "COM" }),
            ev(60, 1, TraceKind::FrameSend { cast: true, bytes: 4 }),
            ev(
                70,
                2,
                TraceKind::FrameDeliver {
                    from: EndpointAddr::new(1),
                    cast: true,
                    bytes: 4,
                    digest: 1,
                    seq: 2,
                },
            ),
            ev(80, 2, TraceKind::LayerUp { layer: "COM" }),
            ev(95, 2, TraceKind::LayerUp { layer: "NAK" }),
            ev(99, 2, TraceKind::Deliver { kind: "CAST", src: 1, digest: 1 }),
        ];
        let live = MetricsSink::new();
        let buf = Arc::new(TraceBuf::new());
        for e in &events {
            live.record(e.clone());
            buf.record(e.clone());
        }
        let text = serialize_trace(&[], &buf.take());
        let offline = latency_stats(&parse_trace(&text).unwrap().records);
        assert_eq!(live.snapshot().latency, offline);
        assert!(!offline.is_empty());
        assert_eq!(LatencyStats::aggregate(&offline.dwell)["NAK"].count(), 2);
    }

    #[test]
    fn prometheus_exposition_is_well_shaped() {
        let sink = MetricsSink::new();
        sink.record(ev(10, 1, TraceKind::LayerDown { layer: "COM" }));
        sink.record(ev(35, 1, TraceKind::FrameSend { cast: true, bytes: 4 }));
        let snap = sink.snapshot();
        let meta: BTreeMap<String, String> = [(META_DROPPED.to_string(), "3".to_string())].into();
        let text = prometheus_text(&snap.latency, &snap.kinds, &meta);
        assert!(text.contains("# TYPE horus_layer_dwell_ns summary"));
        assert!(text.contains("horus_layer_dwell_ns{ep=\"1\",layer=\"COM\",quantile=\"0.5\"} 24"));
        assert!(text.contains("horus_layer_dwell_ns_count{ep=\"all\",layer=\"COM\"} 1"));
        assert!(text.contains("horus_trace_records_total{kind=\"frame-send\"} 1"));
        assert!(text.contains("horus_trace_dropped_total 3"));
        let stack = prometheus_stack_stats(1, &["NAK", "COM"], &StackStats::default());
        assert!(stack.contains("horus_stack_msgs_sent{ep=\"1\"} 0"));
    }
}
