//! Binary trace format **v2**: the same records as the v1 text format at
//! roughly a quarter of the bytes.
//!
//! Layout after the `# horus-trace v2` header line:
//!
//! ```text
//! varint meta_count, then per pair:  str key, str value
//! varint record_count, then per record:
//!   varint body_len                  (length prefix; skippable)
//!   body:
//!     u8     tag                     (TraceKind::id, or 0xFF = generic)
//!     varint zigzag(at_ns ⊖ prev)    (wrapping timestamp delta vs previous)
//!     varint ep
//!     varint clock_len, then per entry: varint actor, varint count
//!     fields:
//!       tag < 0xFF: per the kind's schema, in canonical order —
//!         U64    -> varint
//!         Digest -> 8-byte little-endian u64
//!         Str    -> str              (stored escaped, as in v1)
//!       tag == 0xFF: str kind, varint n, then n × (str key, str value)
//! ```
//!
//! `varint` is LEB128 (7 bits per byte, high bit = continue), little-endian
//! like everything else here.  `str` is interned: a back-reference
//! `varint(index)` for a string the file already carried, or `varint(0)`
//! followed by `varint(len)` + raw UTF-8 bytes for a first occurrence —
//! layer names and kind-name strings appear thousands of times per trace
//! and collapse to one byte each.  Digests get fixed 8-byte slots because
//! they are hashes: uniformly distributed, so varints would *cost* bytes.
//!
//! Both formats serialize the same [`ParsedRecord`] view and the generic
//! tag covers records whose fields don't match their kind's schema (e.g. a
//! hand-edited file), so the v1↔v2 round trip is lossless by construction
//! — the cross-format proptests in `tests/trace_format.rs` hold it there.

use crate::{parse_trace, parsed_from_record, ParsedRecord, ParsedTrace, TraceRecord};
use horus_core::trace::{kind_id_by_name, KIND_NAMES};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The v2 header line (without the newline that terminates it).
pub const TRACE_HEADER_V2: &str = "# horus-trace v2";

/// The record tag for the generic (schema-less) encoding.
const GENERIC_TAG: u8 = 0xFF;

/// Field encodings.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FType {
    /// Canonical-decimal u64, varint-encoded.
    U64,
    /// A content digest: fixed 8-byte little-endian (hash-uniform values
    /// make varints counterproductive).
    Digest,
    /// Escaped text, interned.
    Str,
}

/// Per-kind field schemas, indexed by [`TraceKind::id`]; the tuple order is
/// the wire order and matches `kind_fields`' canonical v1 order.
///
/// [`TraceKind::id`]: horus_core::trace::TraceKind::id
const SCHEMAS: [&[(&str, FType)]; 19] = [
    &[("layer", FType::Str)],
    &[("layer", FType::Str)],
    &[("layer", FType::Str), ("token", FType::U64)],
    &[("cast", FType::U64), ("bytes", FType::U64)],
    &[
        ("from", FType::U64),
        ("cast", FType::U64),
        ("bytes", FType::U64),
        ("digest", FType::Digest),
        ("seq", FType::U64),
    ],
    &[("digest", FType::Digest), ("seq", FType::U64), ("reason", FType::Str)],
    &[("layer", FType::U64), ("token", FType::U64), ("delay_us", FType::U64)],
    &[("layer", FType::U64), ("token", FType::U64), ("digest", FType::Digest), ("seq", FType::U64)],
    &[("kind", FType::Str), ("digest", FType::Digest), ("seq", FType::U64)],
    &[("kind", FType::Str), ("src", FType::U64), ("digest", FType::Digest)],
    &[("view", FType::Str)],
    &[("digest", FType::Digest), ("seq", FType::U64)],
    &[("target", FType::U64), ("digest", FType::Digest), ("seq", FType::U64)],
    &[],
    &[("observer", FType::U64), ("target", FType::U64)],
    &[("digest", FType::Digest), ("seq", FType::U64)],
    &[("digest", FType::Digest), ("seq", FType::U64)],
    &[("digest", FType::Digest), ("seq", FType::U64)],
    &[("text", FType::Str)],
];

/// The canonical field order for a kind name, when it is in the vocabulary
/// (v1 rendering and the v2 schema agree on it).
pub(crate) fn schema_keys(kind: &str) -> Option<Vec<&'static str>> {
    let id = kind_id_by_name(kind)?;
    Some(SCHEMAS[id as usize].iter().map(|(k, _)| *k).collect())
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Whether `s` is the canonical decimal rendering of a u64 — the condition
/// under which a numeric wire encoding round-trips the exact string.
fn canonical_u64(s: &str) -> Option<u64> {
    let v: u64 = s.parse().ok()?;
    // Canonical decimals have no leading zeros / signs / whitespace; the
    // cheap complete check is to render back.
    (v.to_string() == s).then_some(v)
}

/// A bounds-checked reader over the binary body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<String>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0, strings: Vec::new() }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("truncated record body")?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or("truncated byte run")?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err("varint overruns 64 bits".into())
    }

    fn fixed_u64(&mut self) -> Result<u64, String> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let r = self.varint()?;
        if r == 0 {
            let len = self.varint()? as usize;
            let s = std::str::from_utf8(self.bytes(len)?)
                .map_err(|_| "interned string is not UTF-8")?
                .to_string();
            self.strings.push(s.clone());
            Ok(s)
        } else {
            self.strings
                .get(r as usize - 1)
                .cloned()
                .ok_or_else(|| format!("string back-reference {r} out of range"))
        }
    }
}

/// The string-interning writer side.
#[derive(Default)]
struct Interner {
    ids: HashMap<String, u64>,
}

impl Interner {
    fn put_str(&mut self, out: &mut Vec<u8>, s: &str) {
        if let Some(&id) = self.ids.get(s) {
            put_varint(out, id);
        } else {
            put_varint(out, 0);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
            self.ids.insert(s.to_string(), self.ids.len() as u64 + 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Picks the wire encoding for one record: its schema tag when the fields
/// are exactly the kind's schema with canonical numerics, generic otherwise.
fn record_tag(rec: &ParsedRecord) -> u8 {
    let Some(id) = kind_id_by_name(&rec.kind) else { return GENERIC_TAG };
    let schema = SCHEMAS[id as usize];
    if schema.len() != rec.fields.len() {
        return GENERIC_TAG;
    }
    for &(key, ty) in schema {
        match (rec.fields.get(key), ty) {
            (Some(v), FType::U64 | FType::Digest) if canonical_u64(v).is_some() => {}
            (Some(_), FType::Str) => {}
            _ => return GENERIC_TAG,
        }
    }
    id
}

fn encode_record(out: &mut Vec<u8>, intern: &mut Interner, rec: &ParsedRecord, prev_ns: u64) {
    let mut body = Vec::with_capacity(32);
    let tag = record_tag(rec);
    body.push(tag);
    // Wrapping difference: lossless for ANY pair of u64 timestamps (the
    // zigzag varint stays short for the small forward/backward steps real
    // traces take), and the decoder's wrapping add inverts it exactly.
    put_varint(&mut body, zigzag(rec.at_ns.wrapping_sub(prev_ns) as i64));
    put_varint(&mut body, rec.ep);
    put_varint(&mut body, rec.clock.len() as u64);
    for &(actor, count) in &rec.clock {
        put_varint(&mut body, actor);
        put_varint(&mut body, count);
    }
    if tag == GENERIC_TAG {
        intern.put_str(&mut body, &rec.kind);
        put_varint(&mut body, rec.fields.len() as u64);
        for (k, v) in &rec.fields {
            intern.put_str(&mut body, k);
            intern.put_str(&mut body, v);
        }
    } else {
        for &(key, ty) in SCHEMAS[tag as usize] {
            let v = &rec.fields[key];
            match ty {
                FType::U64 => put_varint(&mut body, canonical_u64(v).unwrap()),
                FType::Digest => body.extend_from_slice(&canonical_u64(v).unwrap().to_le_bytes()),
                FType::Str => intern.put_str(&mut body, v),
            }
        }
    }
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

fn encode<'a>(
    meta: impl IntoIterator<Item = (&'a str, &'a str)>,
    records: impl IntoIterator<Item = ParsedRecord>,
) -> Vec<u8> {
    let records: Vec<ParsedRecord> = records.into_iter().collect();
    let mut out = Vec::with_capacity(64 + records.len() * 16);
    out.extend_from_slice(TRACE_HEADER_V2.as_bytes());
    out.push(b'\n');
    let mut intern = Interner::default();
    let meta: Vec<_> = meta.into_iter().collect();
    put_varint(&mut out, meta.len() as u64);
    for (k, v) in meta {
        intern.put_str(&mut out, k);
        intern.put_str(&mut out, v);
    }
    put_varint(&mut out, records.len() as u64);
    let mut prev_ns = 0;
    for rec in &records {
        encode_record(&mut out, &mut intern, rec, prev_ns);
        prev_ns = rec.at_ns;
    }
    out
}

/// Serializes collected records as a v2 binary trace (the counterpart of
/// [`serialize_trace`]; meta pairs keep the given order).
///
/// [`serialize_trace`]: crate::serialize_trace
pub fn serialize_trace_v2(meta: &[(String, String)], records: &[TraceRecord]) -> Vec<u8> {
    encode(
        meta.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        records.iter().map(parsed_from_record),
    )
}

/// Re-encodes a parsed trace (either format) as v2 bytes.
pub fn trace_to_v2(trace: &ParsedTrace) -> Vec<u8> {
    encode(trace.meta.iter().map(|(k, v)| (k.as_str(), v.as_str())), trace.records.iter().cloned())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Parses a v2 binary trace.
///
/// # Errors
///
/// On a missing header or any truncated/malformed structure — with enough
/// context to say what was being read.
pub fn parse_trace_v2(bytes: &[u8]) -> Result<ParsedTrace, String> {
    let header_len = TRACE_HEADER_V2.len() + 1;
    if bytes.len() < header_len || &bytes[..header_len - 1] != TRACE_HEADER_V2.as_bytes() {
        return Err("bad v2 trace header".into());
    }
    let mut r = Reader::new(&bytes[header_len..]);
    let mut out = ParsedTrace::default();
    let meta_count = r.varint().map_err(|e| format!("meta count: {e}"))?;
    for i in 0..meta_count {
        let k = r.str().map_err(|e| format!("meta {i} key: {e}"))?;
        let v = r.str().map_err(|e| format!("meta {i} value: {e}"))?;
        out.meta.insert(k, v);
    }
    let record_count = r.varint().map_err(|e| format!("record count: {e}"))?;
    let mut prev_ns = 0u64;
    for i in 0..record_count {
        let rec = decode_record(&mut r, prev_ns).map_err(|e| format!("record {i}: {e}"))?;
        prev_ns = rec.at_ns;
        out.records.push(rec);
    }
    if !r.done() {
        return Err(format!("{} trailing bytes after the last record", r.buf.len() - r.pos));
    }
    Ok(out)
}

fn decode_record(r: &mut Reader<'_>, prev_ns: u64) -> Result<ParsedRecord, String> {
    let body_len = r.varint()? as usize;
    let body_end = r.pos.checked_add(body_len).filter(|&e| e <= r.buf.len());
    let body_end = body_end.ok_or("record length prefix overruns the file")?;
    let tag = r.byte()?;
    let at_ns = prev_ns.wrapping_add(unzigzag(r.varint()?) as u64);
    let ep = r.varint()?;
    let clock_len = r.varint()? as usize;
    let mut clock = Vec::with_capacity(clock_len.min(64));
    for _ in 0..clock_len {
        clock.push((r.varint()?, r.varint()?));
    }
    let (kind, fields) = if tag == GENERIC_TAG {
        let kind = r.str()?;
        let n = r.varint()?;
        let mut fields = BTreeMap::new();
        for _ in 0..n {
            let k = r.str()?;
            let v = r.str()?;
            fields.insert(k, v);
        }
        (kind, fields)
    } else {
        let schema =
            SCHEMAS.get(tag as usize).ok_or_else(|| format!("unknown record tag {tag}"))?;
        let mut fields = BTreeMap::new();
        for &(key, ty) in *schema {
            let v = match ty {
                FType::U64 => r.varint()?.to_string(),
                FType::Digest => r.fixed_u64()?.to_string(),
                FType::Str => r.str()?,
            };
            fields.insert(key.to_string(), v);
        }
        (KIND_NAMES[tag as usize].to_string(), fields)
    };
    if r.pos != body_end {
        return Err("record body length mismatch".into());
    }
    Ok(ParsedRecord { at_ns, ep, clock, kind, fields })
}

/// Parses a trace in either format, auto-detected by header — the one
/// entry point the CLI and the trace→schedule bridge load through.
pub fn parse_trace_any(bytes: &[u8]) -> Result<ParsedTrace, String> {
    if bytes.starts_with(TRACE_HEADER_V2.as_bytes()) {
        parse_trace_v2(bytes)
    } else {
        let text =
            std::str::from_utf8(bytes).map_err(|_| "not a v2 trace, and not UTF-8 text either")?;
        parse_trace(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize_trace;
    use horus_core::addr::EndpointAddr;
    use horus_core::time::SimTime;
    use horus_core::trace::TraceKind;

    fn rec(at_ns: u64, ep: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_nanos(at_ns),
            ep: EndpointAddr::new(ep),
            clock: vec![(1, 2), (2, 1)],
            kind,
        }
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            rec(1000, 1, TraceKind::LayerDown { layer: "NAK" }),
            rec(
                1500,
                2,
                TraceKind::FrameDeliver {
                    from: EndpointAddr::new(1),
                    cast: true,
                    bytes: 64,
                    digest: u64::MAX - 7,
                    seq: 17,
                },
            ),
            rec(900, 2, TraceKind::ViewInstall { view: "g:1[v2@ep:1 ep:1 ep:2]".into() }),
            rec(2000, 1, TraceKind::Note("hello world\n100%\té".into())),
            rec(2000, 1, TraceKind::InjectCrash),
        ]
    }

    #[test]
    fn v2_roundtrip_and_cross_format_equality() {
        let meta = vec![("scenario".to_string(), "wedge".to_string())];
        let records = sample_records();
        let v2 = serialize_trace_v2(&meta, &records);
        let from_v2 = parse_trace_v2(&v2).unwrap();
        let from_v1 = parse_trace(&serialize_trace(&meta, &records)).unwrap();
        assert_eq!(from_v2, from_v1, "both formats must parse to the same view");
        // Auto-detection sees both.
        assert_eq!(parse_trace_any(&v2).unwrap(), from_v2);
        assert_eq!(parse_trace_any(serialize_trace(&meta, &records).as_bytes()).unwrap(), from_v1);
        // Re-encoding the parsed form is stable.
        assert_eq!(trace_to_v2(&from_v2), v2);
    }

    #[test]
    fn generic_tag_covers_off_schema_records() {
        let mut t = ParsedTrace::default();
        t.records.push(ParsedRecord {
            at_ns: 5,
            ep: 1,
            clock: vec![],
            kind: "custom-kind".to_string(),
            fields: [("a".to_string(), "007".to_string()), ("b".to_string(), "x%20y".to_string())]
                .into(),
        });
        // A vocabulary kind with non-canonical numerics must also fall back.
        t.records.push(ParsedRecord {
            at_ns: 6,
            ep: 1,
            clock: vec![],
            kind: "crash".to_string(),
            fields: [
                ("digest".to_string(), "01".to_string()),
                ("seq".to_string(), "2".to_string()),
            ]
            .into(),
        });
        assert_eq!(parse_trace_v2(&trace_to_v2(&t)).unwrap(), t);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let v2 = serialize_trace_v2(&[], &sample_records());
        for cut in [TRACE_HEADER_V2.len() + 1, v2.len() / 2, v2.len() - 1] {
            assert!(parse_trace_v2(&v2[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Trailing garbage is rejected too.
        let mut padded = v2.clone();
        padded.push(0);
        assert!(parse_trace_v2(&padded).is_err());
    }

    #[test]
    fn v2_is_substantially_smaller_than_v1() {
        // Synthetic but shaped like a real ring capture: layer crossings
        // dominate, timestamps grow, names repeat.
        let mut records = Vec::new();
        for i in 0..1000u64 {
            records.push(rec(i * 1300, 1 + i % 3, TraceKind::LayerDown { layer: "NAK" }));
            records.push(rec(
                i * 1300 + 400,
                1 + i % 3,
                TraceKind::FrameSend { cast: true, bytes: 64 },
            ));
        }
        let v1 = serialize_trace(&[], &records).len();
        let v2 = serialize_trace_v2(&[], &records).len();
        assert!(v1 as f64 / v2 as f64 >= 3.0, "v2 must be ≥3× smaller: v1={v1}B v2={v2}B");
    }
}
