//! E29 — trace serialization throughput: v1 text vs v2 binary.
//!
//! `horus-trace` captures are written on the soak/replay hot path and
//! parsed back by every offline tool, so both directions matter.  This
//! bench encodes and decodes the same synthetic capture — a realistic mix
//! of layer crossings, frames, timers, and deliveries, with the skewed
//! small-delta timestamps real runs produce — through both formats, and
//! prints the bytes-per-record ratio to stderr (the size claim
//! `tests/trace_smoke.rs` gates at >= 3x).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::trace::TraceKind;
use horus_core::{EndpointAddr, SimTime};
use horus_trace::{parse_trace, parse_trace_v2, serialize_trace, serialize_trace_v2, TraceRecord};

const RECORDS: usize = 4096;

/// A deterministic capture shaped like a traced replay: mostly layer
/// crossings and frames, occasional timers, views, and notes.
fn synth_trace(n: usize) -> Vec<TraceRecord> {
    let mut at: u64 = 0;
    (0..n as u64)
        .map(|i| {
            // Skewed deltas: mostly sub-microsecond, every 64th a long gap.
            at += if i % 64 == 0 { 1_000_000 } else { 300 + (i % 7) * 130 };
            let digest = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let kind = match i % 9 {
                0 => TraceKind::LayerDown { layer: "NAK" },
                1 => TraceKind::LayerUp { layer: "COM" },
                2 => TraceKind::FrameSend { cast: true, bytes: 64 + (i as usize % 1400) },
                3 => TraceKind::FrameDeliver {
                    from: EndpointAddr::new(1 + (i + 1) % 3),
                    cast: true,
                    bytes: 64 + (i as usize % 1400),
                    digest,
                    seq: i / 9,
                },
                4 => TraceKind::LayerUp { layer: "FRAG" },
                5 => TraceKind::Deliver { kind: "CAST", src: 1 + i % 3, digest },
                6 => TraceKind::TimerArm { layer: (i % 37) as usize, token: i, delay_us: 500 },
                7 => {
                    TraceKind::TimerFire { layer: (i % 37) as usize, token: i, digest, seq: i / 9 }
                }
                _ => TraceKind::Note(format!("round {}", i / 9)),
            };
            TraceRecord {
                at: SimTime::from_nanos(at),
                ep: EndpointAddr::new(1 + i % 3),
                clock: vec![(1 + i % 3, i / 3)],
                kind,
            }
        })
        .collect()
}

fn bench_trace_format(c: &mut Criterion) {
    let meta =
        vec![("scenario".to_string(), "bench".to_string()), ("seed".to_string(), "7".to_string())];
    let records = synth_trace(RECORDS);
    let v1 = serialize_trace(&meta, &records);
    let v2 = serialize_trace_v2(&meta, &records);
    assert_eq!(
        parse_trace(&v1).unwrap(),
        parse_trace_v2(&v2).unwrap(),
        "formats must agree before we time them"
    );
    eprintln!(
        "trace_format: {} records, v1 {:.1} B/rec, v2 {:.1} B/rec, ratio {:.2}x",
        RECORDS,
        v1.len() as f64 / RECORDS as f64,
        v2.len() as f64 / RECORDS as f64,
        v1.len() as f64 / v2.len() as f64
    );

    let mut g = c.benchmark_group("trace_format");
    g.throughput(Throughput::Elements(RECORDS as u64));
    g.bench_function(BenchmarkId::new("encode", "v1"), |b| {
        b.iter(|| serialize_trace(&meta, &records))
    });
    g.bench_function(BenchmarkId::new("encode", "v2"), |b| {
        b.iter(|| serialize_trace_v2(&meta, &records))
    });
    g.bench_function(BenchmarkId::new("decode", "v1"), |b| b.iter(|| parse_trace(&v1).unwrap()));
    g.bench_function(BenchmarkId::new("decode", "v2"), |b| b.iter(|| parse_trace_v2(&v2).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_trace_format);
criterion_main!(benches);
