//! E12 — header layout ablation (§10 problem 3).
//!
//! "Layers push their own header onto the message.  For convenience, this
//! header is aligned to a word boundary.  This leads to a considerable
//! overhead of unused bits ... Also, each pop and push operation has an
//! associated overhead."  The proposed fix pre-computes "a single header
//! in which the necessary fields are compacted".
//!
//! Series: the §7 stack in `aligned` (1995 layout) vs `compact` (proposed
//! layout), across payload sizes.  Wire-size numbers print to stderr.

use bench::{ep, group, lone_stack, pump_one};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::prelude::*;

const STACK: &str = "TOTAL:MBRSHIP:FRAG:NAK:COM";

fn stack_pair(mode: HeaderMode) -> (Stack, Stack) {
    let cfg = StackConfig { mode, ..StackConfig::default() };
    let tx = lone_stack(STACK, cfg.clone());
    // Second endpoint for the receive side.
    let mut rx = horus_layers::registry::build_stack(ep(2), STACK, cfg).unwrap();
    let _ = rx.init();
    let _ = rx.handle(StackInput::FromApp(Down::Join { group: group() }));
    (tx, rx)
}

fn bench_header_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("header_overhead");
    g.sample_size(40);
    for &payload in &[0usize, 64, 1024] {
        let body = vec![0xA5u8; payload];
        g.throughput(Throughput::Bytes(payload as u64));
        for (label, mode) in [("aligned", HeaderMode::Aligned), ("compact", HeaderMode::Compact)] {
            g.bench_with_input(BenchmarkId::new(label, payload), &payload, |b, _| {
                let (mut tx, mut rx) = stack_pair(mode);
                b.iter(|| {
                    // The raw send path cost: header push/stamp +
                    // encode (+ the receive-side pop on delivery).
                    let n = pump_one(&mut tx, &mut rx, &body);
                    std::hint::black_box(n);
                });
            });
        }
    }
    g.finish();

    // Wire sizes for EXPERIMENTS.md: bytes on the wire per cast.
    eprintln!("\n[E12] wire bytes per cast of the {STACK} stack:");
    for (label, mode) in [("aligned", HeaderMode::Aligned), ("compact", HeaderMode::Compact)] {
        for &payload in &[0usize, 64, 1024] {
            let (mut tx, _) = stack_pair(mode);
            let msg = tx.new_message(vec![0u8; payload]);
            let fx = tx.handle(StackInput::FromApp(Down::Cast(msg)));
            let wire = fx
                .iter()
                .find_map(|e| match e {
                    Effect::NetCast { wire } => Some(wire.len()),
                    _ => None,
                })
                .expect("cast produced");
            eprintln!(
                "  {label:<8} payload {payload:>5} B -> wire {wire:>5} B (overhead {:>3} B)",
                wire - payload
            );
        }
    }
}

criterion_group!(benches, bench_header_modes);
criterion_main!(benches);
