//! E13 — "applications pay only for properties they need" (§1, §10, §13).
//!
//! One fixed workload (a 3-member group exchanging 60 round-robin casts)
//! runs over stacks of increasing strength, from bare best-effort to safe
//! delivery.  Criterion measures the CPU cost of executing the protocol
//! work; the per-stack wire-message amplification (frames on the network
//! per payload delivered) prints to stderr — both should rise montonically
//! with the strength of the guarantee, which *is* the paper's
//! pay-for-what-you-use claim.

use bench::{ep, joined_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_core::prelude::*;
use horus_net::NetConfig;
use horus_sim::Workload;
use std::time::Duration;

const SLOTS: u64 = 60;

const STACKS: &[(&str, &str, bool)] = &[
    // (label, description, needs group formation)
    ("1_besteffort", "COM", false),
    ("2_fifo", "NAK:COM", false),
    ("3_frag", "FRAG:NAK:COM", false),
    ("4_vsync", "MBRSHIP:FRAG:NAK:COM(promiscuous=true)", true),
    ("5_total", "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)", true),
    ("6_causal", "CAUSAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)", true),
    ("7_safe", "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM(promiscuous=true)", true),
];

fn run_workload(desc: &str, needs_group: bool, seed: u64) -> (u64, usize) {
    let mut w = if needs_group {
        joined_world(3, seed, NetConfig::reliable(), desc, StackConfig::default())
    } else {
        let mut w = horus_sim::SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=3 {
            let s =
                horus_layers::registry::build_stack(ep(i), desc, StackConfig::default()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), bench::group());
        }
        w
    };
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], SLOTS);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    let frames_before = w.net_stats().frames_sent;
    w.run_for(Duration::from_secs(2));
    let frames = w.net_stats().frames_sent - frames_before;
    let delivered = w.delivered_casts(ep(2)).len();
    (frames, delivered)
}

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering_protocols");
    g.sample_size(10);
    for &(label, desc, needs_group) in STACKS {
        g.bench_function(BenchmarkId::new("cpu", label), |b| {
            b.iter(|| {
                let out = run_workload(desc, needs_group, 42);
                std::hint::black_box(out);
            });
        });
    }
    g.finish();

    eprintln!("\n[E13] wire amplification (frames on the network per workload, {SLOTS} casts):");
    for &(label, desc, needs_group) in STACKS {
        let (frames, delivered) = run_workload(desc, needs_group, 42);
        eprintln!("  {label:<14} {desc:<55} frames={frames:>5} delivered@ep2={delivered:>3}");
    }
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
