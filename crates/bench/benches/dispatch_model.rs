//! E11 — dispatch-model ablation (§10 problem 2).
//!
//! "Since Horus is thread-safe, multiple procedure calls into the same
//! layer often have to be synchronized by a lock ... we are eliminating
//! intra-stack threading, having discovered that concurrency within a
//! stack does not lead to significant gains."
//!
//! Real threads, real time, in-process loopback transport: a 2-member
//! group floods N casts through the `NAK:COM` stack under
//! * `event_queue` — one scheduler thread per stack (the model the paper
//!   adopts),
//! * `locked_threads` — four workers contending on a stack lock (the
//!   model it abandons), and
//! * `sharded` — the sharded run-to-completion executor with batched
//!   dispatch and direct shard delivery (PR 3).
//!
//! E23 rides along: the `batch_size` sweep holds the sharded executor
//! fixed and varies only `batch_max`, isolating what batching at the
//! dispatch boundary is worth.

use bench::ep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::prelude::*;
use horus_layers::registry::build_stack;
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use horus_sim::threaded::{DispatchModel, ThreadedEndpoint};
use std::time::Duration;

const FLOOD: usize = 500;

fn flood(model: DispatchModel) {
    let net = LoopbackNet::new();
    let g = GroupAddr::new(1);
    let mut endpoints: Vec<ThreadedEndpoint> = (1..=2)
        .map(|i| {
            let s = build_stack(ep(i), "NAK:COM", StackConfig::default()).unwrap();
            ThreadedEndpoint::spawn(s, net.clone(), model)
        })
        .collect();
    for e in &endpoints {
        e.down(Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(5));
    for k in 0..FLOOD {
        endpoints[0].cast_bytes(vec![(k % 251) as u8; 32]);
    }
    let ok = endpoints[1].wait_until(Duration::from_secs(30), |e| e.cast_count() >= FLOOD);
    assert!(ok, "receiver saw {}/{FLOOD}", endpoints[1].cast_count());
    for e in &mut endpoints {
        e.stop();
    }
}

fn flood_sharded(shards: usize, batch_max: usize) {
    let cfg = ShardConfig::with_shards(shards).batch_max(batch_max).record_upcalls(false);
    let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
    let g = GroupAddr::new(1);
    for i in 1..=2 {
        let s = build_stack(ep(i), "NAK:COM", StackConfig::default()).unwrap();
        ex.add_stack(s);
        ex.down(ep(i), Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(5));
    for k in 0..FLOOD {
        ex.cast_bytes(ep(1), vec![(k % 251) as u8; 32]);
    }
    let ok = ex.wait_until(Duration::from_secs(30), |ex| ex.cast_count(ep(2)) >= FLOOD);
    assert!(ok, "receiver saw {}/{FLOOD}", ex.cast_count(ep(2)));
    ex.stop();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_model");
    // Whole-scenario benches with threads: keep samples small.
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.throughput(Throughput::Elements(FLOOD as u64));
    g.bench_function(BenchmarkId::new("event_queue", FLOOD), |b| {
        b.iter(|| flood(DispatchModel::EventQueue));
    });
    g.bench_function(BenchmarkId::new("locked_threads", FLOOD), |b| {
        b.iter(|| flood(DispatchModel::LockedThreads(4)));
    });
    g.bench_function(BenchmarkId::new("sharded", FLOOD), |b| {
        b.iter(|| flood_sharded(2, 64));
    });
    g.finish();
}

/// E23 — batch-size sweep: same executor, same workload, only the
/// dispatch burst limit varies.
fn bench_batch_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_size");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.throughput(Throughput::Elements(FLOOD as u64));
    for batch_max in [1usize, 16, 64] {
        g.bench_function(BenchmarkId::new("sharded", batch_max), |b| {
            b.iter(|| flood_sharded(2, batch_max));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_batch_size);
criterion_main!(benches);
