//! E4 — cost of the §6 property machinery itself: well-formedness
//! checking is nanoseconds, planning a minimal stack over the 2¹⁶
//! property-state graph is microseconds-to-milliseconds.  Cheap enough to
//! run at every endpoint creation, which is the paper's premise for
//! run-time composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_props::{derive_stack, plan_minimal_stack, Prop, PropSet};

fn bench_planning(c: &mut Criterion) {
    let p1 = PropSet::of(&[Prop::BestEffort]);
    let mut g = c.benchmark_group("stack_planning");

    g.bench_function("derive_canonical_stack", |b| {
        let stack = ["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"];
        b.iter(|| std::hint::black_box(derive_stack(&stack, p1).unwrap()));
    });

    let requests = [
        ("fifo", PropSet::of(&[Prop::FifoMulticast])),
        ("vsync", PropSet::of(&[Prop::VirtualSync])),
        ("total", PropSet::of(&[Prop::TotalOrder])),
        ("safe", PropSet::of(&[Prop::Safe])),
        ("everything", PropSet::ALL.without(Prop::BestEffort).without(Prop::Prioritized)),
        ("impossible", PropSet::of(&[Prop::BestEffort, Prop::FifoMulticast])),
    ];
    for (label, req) in requests {
        g.bench_with_input(BenchmarkId::new("plan", label), &req, |b, &req| {
            b.iter(|| std::hint::black_box(plan_minimal_stack(req, p1)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
