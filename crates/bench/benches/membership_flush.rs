//! E15 — the cost of the flush protocol (§5, Figure 2).
//!
//! For group sizes 2..16 and varying amounts of unstable traffic in
//! flight, measure (a) the CPU cost of executing the crash→flush→view
//! scenario and (b) the *virtual-time* latency from the crash to the new
//! view at every survivor, plus the number of wire frames the flush cost
//! — the protocol-level numbers print to stderr for EXPERIMENTS.md.

use bench::{ep, joined_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_core::prelude::*;
use horus_net::NetConfig;
use horus_sim::Workload;
use std::time::Duration;

const STACK: &str = "MBRSHIP:FRAG:NAK:COM(promiscuous=true)";

/// Runs the scenario; returns (virtual flush latency, flush wire frames).
fn crash_and_flush(n: u64, unstable: u64, seed: u64) -> (Duration, u64) {
    let mut w = joined_world(n, seed, NetConfig::reliable(), STACK, StackConfig::default());
    let t0 = w.now();
    // Build up in-flight traffic from the soon-to-die member.
    let wl = Workload {
        kind: horus_sim::WorkloadKind::SingleSender,
        senders: vec![ep(n)],
        slots: unstable,
        interval: Duration::from_micros(50),
        payload: 64,
    };
    wl.schedule(&mut w, t0 + Duration::from_micros(1));
    let crash_at = t0 + Duration::from_millis(1);
    w.crash_at(crash_at, ep(n));
    let frames_before = w.net_stats().frames_sent;
    w.run_for(Duration::from_secs(8));
    let frames = w.net_stats().frames_sent - frames_before;
    // Flush latency: crash to the last survivor installing the new view.
    // Only views installed *after* the crash count (group formation also
    // passes through an (n-1)-member view).
    let mut worst = Duration::ZERO;
    for i in 1..n {
        let at = w
            .upcalls(ep(i))
            .iter()
            .filter_map(|(t, up)| match up {
                Up::View(v) if v.len() == (n - 1) as usize && *t >= crash_at => Some(*t),
                _ => None,
            })
            .next()
            .unwrap_or_else(|| panic!("ep{i} never installed the survivor view"));
        worst = worst.max(at.saturating_since(crash_at));
    }
    (worst, frames)
}

fn bench_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership_flush");
    g.sample_size(10);
    for &n in &[2u64, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("crash_flush_cpu", n), &n, |b, &n| {
            b.iter(|| {
                let out = crash_and_flush(n, 8, 11);
                std::hint::black_box(out);
            });
        });
    }
    for &unstable in &[0u64, 16, 64] {
        g.bench_with_input(BenchmarkId::new("unstable_msgs_cpu", unstable), &unstable, |b, &u| {
            b.iter(|| {
                let out = crash_and_flush(4, u, 12);
                std::hint::black_box(out);
            });
        });
    }
    g.finish();

    eprintln!("\n[E15] flush latency (virtual time, crash -> last survivor view) and frames:");
    for &n in &[2u64, 4, 8, 16] {
        let (lat, frames) = crash_and_flush(n, 8, 11);
        eprintln!("  n={n:<3} unstable=8   latency={:>8.2?}  frames={frames}", lat);
    }
    for &u in &[0u64, 16, 64] {
        let (lat, frames) = crash_and_flush(4, u, 12);
        eprintln!("  n=4   unstable={u:<3} latency={:>8.2?}  frames={frames}", lat);
    }
}

criterion_group!(benches, bench_flush);
criterion_main!(benches);
