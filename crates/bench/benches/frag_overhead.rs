//! E9 — the FRAG layer's one-way latency overhead (§10).
//!
//! "On a Sparc 10 the overhead of the fragmentation/reassembly layer FRAG
//! (which only needs one bit of header space) adds about 50 µsecs to the
//! one-way latency, which is considerable."
//!
//! We measure the same quantity on this implementation: the send+deliver
//! hot path of `NAK:COM` with and without FRAG in between, for bodies on
//! the fast path (no chunking) and far beyond the fragment size.  The
//! paper's point — the *existence* of measurable per-layer cost and its
//! smallness relative to protocol work — is what should reproduce; the
//! absolute number is hardware-bound.

use bench::{ep, group, lone_stack, pump_one};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::prelude::*;

fn pair(desc: &str) -> (Stack, Stack) {
    let tx = lone_stack(desc, StackConfig::default());
    let mut rx = horus_layers::registry::build_stack(ep(2), desc, StackConfig::default()).unwrap();
    let _ = rx.init();
    let _ = rx.handle(StackInput::FromApp(Down::Join { group: group() }));
    (tx, rx)
}

fn bench_frag(c: &mut Criterion) {
    let mut g = c.benchmark_group("frag_overhead");
    g.sample_size(40);

    // The paper's measurement: small message, FRAG present but inactive
    // (fast path) vs absent.  The delta is "the overhead of FRAG".
    for (label, desc) in [("without_frag", "NAK:COM"), ("with_frag", "FRAG:NAK:COM")] {
        g.bench_function(BenchmarkId::new(label, "1KiB"), |b| {
            let (mut tx, mut rx) = pair(desc);
            let body = vec![7u8; 1024];
            b.iter(|| {
                let n = pump_one(&mut tx, &mut rx, &body);
                std::hint::black_box(n);
            });
        });
    }

    // Fragmentation actually working: a 64 KiB body in 1 KiB fragments.
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function(BenchmarkId::new("with_frag", "64KiB_fragmenting"), |b| {
        let (mut tx, mut rx) = pair("FRAG(size=1024):NAK:COM");
        let body = vec![7u8; 64 * 1024];
        b.iter(|| {
            let n = pump_one(&mut tx, &mut rx, &body);
            assert_eq!(n, 1, "reassembled exactly once");
        });
    });
    g.finish();
}

criterion_group!(benches, bench_frag);
criterion_main!(benches);
