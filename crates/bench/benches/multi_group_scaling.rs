//! E22 — shard scaling on a multi-group workload.
//!
//! The sharded executor's pitch is that *independent* stacks scale with
//! cores: endpoints hash to shards, a stack is only ever touched by its
//! owning worker, and there is no cross-shard synchronization on the
//! dispatch path.  This bench floods M disjoint 2-member groups (one
//! sender each) over the `NAK:COM` stack and sweeps the shard count.
//!
//! On a multi-core box throughput should grow with shards until the
//! physical core count; on a single-core box the sweep degenerates to a
//! context-switch tax and the curve stays flat — `BENCH_dispatch.json`
//! records which regime the numbers were taken in.

use bench::ep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::prelude::*;
use horus_layers::registry::build_stack;
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use std::time::Duration;

const GROUPS: usize = 4;
const CASTS_PER_GROUP: usize = 100;

/// Floods `GROUPS` disjoint sender→receiver pairs and waits for every
/// receiver to see its `CASTS_PER_GROUP` casts.
fn flood_groups(shards: usize) {
    let cfg = ShardConfig::with_shards(shards).batch_max(64).record_upcalls(false);
    let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
    for gi in 0..GROUPS as u64 {
        let g = GroupAddr::new(gi + 1);
        for m in 0..2u64 {
            let e = ep(gi * 2 + m + 1);
            let s = build_stack(e, "NAK:COM", StackConfig::default()).unwrap();
            ex.add_stack(s);
            ex.down(e, Down::Join { group: g });
        }
    }
    std::thread::sleep(Duration::from_millis(5));
    for k in 0..CASTS_PER_GROUP {
        for gi in 0..GROUPS as u64 {
            ex.cast_bytes(ep(gi * 2 + 1), vec![(k % 251) as u8; 32]);
        }
    }
    let ok = ex.wait_until(Duration::from_secs(30), |ex| {
        (0..GROUPS as u64).all(|gi| ex.cast_count(ep(gi * 2 + 2)) >= CASTS_PER_GROUP)
    });
    assert!(ok, "not all receivers finished under {shards} shards");
    ex.stop();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("multi_group_scaling");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.throughput(Throughput::Elements((GROUPS * CASTS_PER_GROUP) as u64));
    for shards in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| flood_groups(shards));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
