//! E16 (performance half) — reference vs production layers (§8).
//!
//! "Demanding applications would normally use the more optimized layers."
//! Same group, same workload, four stack flavours: production TOTAL/NAK,
//! reference TOTAL_REF/NAK_REF, and the two mixtures.  CPU cost and (on
//! stderr) wire amplification show what the reference simplicity costs.

use bench::{ep, joined_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_core::prelude::*;
use horus_net::NetConfig;
use horus_sim::Workload;
use std::time::Duration;

fn flavour(ref_total: bool, ref_nak: bool) -> String {
    format!(
        "{}:MBRSHIP:FRAG:{}:COM(promiscuous=true)",
        if ref_total { "TOTAL_REF" } else { "TOTAL" },
        if ref_nak { "NAK_REF" } else { "NAK" },
    )
}

fn run(desc: &str, seed: u64) -> (u64, usize) {
    let mut w = joined_world(3, seed, NetConfig::lossy(0.05), desc, StackConfig::default());
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 30);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    let before = w.net_stats().frames_sent;
    w.run_for(Duration::from_secs(3));
    (w.net_stats().frames_sent - before, w.delivered_casts(ep(2)).len())
}

fn bench_flavours(c: &mut Criterion) {
    let mut g = c.benchmark_group("ref_vs_prod");
    g.sample_size(10);
    for &(rt, rn) in &[(false, false), (true, false), (false, true), (true, true)] {
        let label = format!(
            "{}+{}",
            if rt { "TOTAL_REF" } else { "TOTAL" },
            if rn { "NAK_REF" } else { "NAK" }
        );
        let desc = flavour(rt, rn);
        g.bench_function(BenchmarkId::new("cpu", &label), |b| {
            b.iter(|| std::hint::black_box(run(&desc, 31)));
        });
    }
    g.finish();

    eprintln!("\n[E16] wire frames per 30-cast workload at 5% loss:");
    for &(rt, rn) in &[(false, false), (true, false), (false, true), (true, true)] {
        let desc = flavour(rt, rn);
        let (frames, delivered) = run(&desc, 31);
        eprintln!("  {desc:<62} frames={frames:>5} delivered={delivered}");
    }
}

criterion_group!(benches, bench_flavours);
criterion_main!(benches);
