//! E14 — "whether STABLE or PINWHEEL will be optimal" (§10).
//!
//! The two stability layers trade background bandwidth against
//! stabilization latency: STABLE gossips every member's row eagerly,
//! PINWHEEL rotates one matrix multicast per slot.  For group sizes
//! 2..16, measure (stderr table) the virtual time from a cast to the
//! sender *knowing* it is stable, and the stability-row traffic spent —
//! the crossover the paper says applications should pick by.

use bench::{ep, joined_world};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_core::prelude::*;
use horus_net::NetConfig;
use std::time::Duration;

fn stack(layer: &str) -> String {
    format!("{layer}:MBRSHIP:FRAG:NAK:COM(promiscuous=true)")
}

/// One cast; run until the *sender* observes stability.  Returns
/// (virtual latency, stability frames sent group-wide).
fn stabilize_once(layer: &str, n: u64, seed: u64) -> (Duration, u64) {
    let mut w = joined_world(n, seed, NetConfig::reliable(), &stack(layer), StackConfig::default());
    let t0 = w.now();
    w.cast_bytes(ep(1), &b"probe"[..]);
    w.run_for(Duration::from_secs(10));
    let at = w
        .upcalls(ep(1))
        .iter()
        .filter_map(|(t, up)| match up {
            Up::Stable(m) if m.is_stable(ep(1), 1) => Some(*t),
            _ => None,
        })
        .next()
        .unwrap_or_else(|| panic!("{layer} n={n}: sender never saw stability"));
    // Count stability-row traffic via the layers' own counters.
    let mut rows = 0u64;
    for i in 1..=n {
        let stack = w.stack(ep(i)).unwrap();
        if let Some(s) = stack.focus_as::<horus_layers::stable::Stable>("STABLE") {
            rows += s.rows_sent;
        }
        if let Some(p) = stack.focus_as::<horus_layers::pinwheel::Pinwheel>("PINWHEEL") {
            rows += p.rows_sent;
        }
    }
    (at.saturating_since(t0), rows)
}

/// Sustained load: total stability rows multicast group-wide while the
/// workload runs — the bandwidth side of the crossover.
fn rows_under_load(layer: &str, n: u64, seed: u64) -> u64 {
    let mut w = joined_world(n, seed, NetConfig::reliable(), &stack(layer), StackConfig::default());
    let t0 = w.now();
    for k in 0..100u64 {
        w.cast_bytes_at(t0 + Duration::from_millis(10 * k), ep(1), vec![(k % 251) as u8; 32]);
    }
    w.run_for(Duration::from_millis(1100));
    let mut rows = 0u64;
    for i in 1..=n {
        let stack = w.stack(ep(i)).unwrap();
        if let Some(s) = stack.focus_as::<horus_layers::stable::Stable>("STABLE") {
            rows += s.rows_sent;
        }
        if let Some(p) = stack.focus_as::<horus_layers::pinwheel::Pinwheel>("PINWHEEL") {
            rows += p.rows_sent;
        }
    }
    rows
}

fn bench_stability(c: &mut Criterion) {
    let mut g = c.benchmark_group("stability");
    g.sample_size(10);
    for layer in ["STABLE", "PINWHEEL"] {
        for &n in &[2u64, 4, 8] {
            g.bench_with_input(BenchmarkId::new(layer, n), &n, |b, &n| {
                b.iter(|| {
                    let out = stabilize_once(layer, n, 21);
                    std::hint::black_box(out);
                });
            });
        }
    }
    g.finish();

    eprintln!("\n[E14] single-cast stabilization latency (virtual) and rows by group size:");
    for &n in &[2u64, 4, 8, 16] {
        let (ls, rs) = stabilize_once("STABLE", n, 21);
        let (lp, rp) = stabilize_once("PINWHEEL", n, 21);
        eprintln!(
            "  n={n:<3} STABLE latency={ls:>9.2?} rows={rs:<4}  PINWHEEL latency={lp:>9.2?} rows={rp}"
        );
    }
    eprintln!("\n[E14] row traffic under sustained load (100 casts @10ms, whole group):");
    for &n in &[2u64, 4, 8, 16] {
        let rs = rows_under_load("STABLE", n, 22);
        let rp = rows_under_load("PINWHEEL", n, 22);
        eprintln!("  n={n:<3} STABLE rows={rs:<5} PINWHEEL rows={rp}");
    }
}

criterion_group!(benches, bench_stability);
criterion_main!(benches);
