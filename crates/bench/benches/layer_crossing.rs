//! E8 + E10 — the cost of a layer boundary (§10 problem 1).
//!
//! "There is an indirect procedure call each time a layer boundary is
//! crossed" — and the proposed fix, "skipping layers that take no action
//! on the way down or up".
//!
//! Series:
//! * `opaque/N` — N pass-through layers that hide their passivity: every
//!   boundary costs a dynamic dispatch (the 1995 baseline).
//! * `passive_skip/N` — the same depth, but the layers declare passivity
//!   and the runtime skips them (the §10 fix).
//! * `passive_noskip/N` — skip optimization disabled, for the ablation.
//!
//! The per-layer increment of the `opaque` series is this system's "cost
//! of a layer ... as low as just a few instructions" number.

use bench::{lone_stack, nop_stack_desc, pump_one};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horus_core::prelude::*;

fn bench_layer_crossing(c: &mut Criterion) {
    let mut g = c.benchmark_group("layer_crossing");
    g.sample_size(60);
    for &depth in &[0usize, 1, 2, 4, 8, 16] {
        // Baseline: opaque layers, every boundary dispatched.
        g.bench_with_input(BenchmarkId::new("opaque", depth), &depth, |b, &d| {
            let mut tx = lone_stack(&nop_stack_desc(d, true), StackConfig::default());
            let mut rx = lone_stack(&nop_stack_desc(d, true), StackConfig::default());
            b.iter(|| {
                let n = pump_one(&mut tx, &mut rx, b"x");
                std::hint::black_box(n);
            });
        });
        // Passive layers with the skip optimization on (default).
        g.bench_with_input(BenchmarkId::new("passive_skip", depth), &depth, |b, &d| {
            let mut tx = lone_stack(&nop_stack_desc(d, false), StackConfig::default());
            let mut rx = lone_stack(&nop_stack_desc(d, false), StackConfig::default());
            b.iter(|| {
                let n = pump_one(&mut tx, &mut rx, b"x");
                std::hint::black_box(n);
            });
        });
        // Ablation: same passive layers, skip disabled.
        g.bench_with_input(BenchmarkId::new("passive_noskip", depth), &depth, |b, &d| {
            let cfg = StackConfig { skip_passive: false, ..StackConfig::default() };
            let mut tx = lone_stack(&nop_stack_desc(d, false), cfg.clone());
            let mut rx = lone_stack(&nop_stack_desc(d, false), cfg);
            b.iter(|| {
                let n = pump_one(&mut tx, &mut rx, b"x");
                std::hint::black_box(n);
            });
        });
    }
    g.finish();

    // Header bytes a real layer adds (the "few bytes (or none at all)"
    // claim): print once for EXPERIMENTS.md.
    eprintln!("\n[E8] header bytes per message by stack (compact mode):");
    for desc in
        ["COM", "NAK:COM", "FRAG:NAK:COM", "MBRSHIP:FRAG:NAK:COM", "TOTAL:MBRSHIP:FRAG:NAK:COM"]
    {
        let s = lone_stack(desc, StackConfig::default());
        eprintln!("  {desc:<30} {:>3} B", s.layout().compact_bytes());
    }
}

criterion_group!(benches, bench_layer_crossing);
criterion_main!(benches);
