//! E18 — message packing throughput (§10).
//!
//! "Another important optimization is message packing: the combining of
//! several small messages into a single large one."  This bench sweeps
//! payload size × pack threshold over the send+deliver hot path of
//! `PACK:NAK:COM` against the unpacked `NAK:COM` baseline, and prints the
//! wire-frame amplification (frames per message) to stderr — the
//! protocol-level quantity the paper's argument turns on.
//!
//! The PACK thresholds are chosen so the count threshold flushes
//! synchronously on the last cast of each burst (no timers in the lone
//! stack pump), making every iteration a complete, delivered burst.

use bench::{ep, group};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horus_core::prelude::*;
use horus_layers::registry::build_stack;

fn pump_stack(i: u64, desc: &str) -> Stack {
    let mut s = build_stack(ep(i), desc, StackConfig::default()).expect("stack builds");
    let _ = s.init();
    let _ = s.handle(StackInput::FromApp(Down::Join { group: group() }));
    s
}

/// Pumps one burst of `burst` casts through tx→rx; returns
/// (wire frames produced, casts delivered).
fn pump_burst(tx: &mut Stack, rx: &mut Stack, body: &[u8], burst: usize) -> (usize, usize) {
    let mut frames = 0;
    let mut delivered = 0;
    for _ in 0..burst {
        let msg = tx.new_message(body.to_vec());
        for e in tx.handle(StackInput::FromApp(Down::Cast(msg))) {
            if let Effect::NetCast { wire } = e {
                frames += 1;
                delivered += rx
                    .handle(StackInput::FromNet { from: ep(1), cast: true, wire })
                    .iter()
                    .filter(|e| matches!(e, Effect::Deliver(Up::Cast { .. })))
                    .count();
            }
        }
    }
    (frames, delivered)
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing_throughput");
    g.sample_size(40);

    for &size in &[16usize, 64, 256, 1024] {
        for &pack in &[0usize, 8, 32] {
            let burst = if pack == 0 { 32 } else { pack };
            let desc = if pack == 0 {
                "NAK:COM".to_string()
            } else {
                // Byte threshold high enough that only the count fires.
                format!("PACK(msgs={pack},bytes=1000000,delay=1000):NAK:COM")
            };
            let label = if pack == 0 { "unpacked".to_string() } else { format!("pack{pack}") };
            g.throughput(Throughput::Elements(burst as u64));
            g.bench_function(BenchmarkId::new(label.clone(), format!("{size}B")), |b| {
                let mut tx = pump_stack(1, &desc);
                let mut rx = pump_stack(2, &desc);
                let body = vec![0x42u8; size];
                b.iter(|| {
                    let (_, delivered) = pump_burst(&mut tx, &mut rx, &body, burst);
                    assert_eq!(delivered, burst, "{desc}: burst fully delivered");
                });
                // Protocol-level metric once per config, outside the
                // timed loop.
                let (frames, delivered) = pump_burst(&mut tx, &mut rx, &body, burst);
                eprintln!(
                    "packing_throughput: {label} size={size}B \
                     frames/msg={:.3} ({frames} frames / {delivered} msgs)",
                    frames as f64 / delivered as f64
                );
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
