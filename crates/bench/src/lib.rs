//! Shared scaffolding for the benchmark harness.
//!
//! Each Criterion bench regenerates one experiment from EXPERIMENTS.md
//! (the §10 overhead discussion and the design-choice ablations).  Wall
//! time is measured by Criterion; protocol-level metrics that the paper
//! talks about — bytes of header per message, messages on the wire per
//! payload delivered, virtual-time latencies — are printed to stderr by
//! the benches as they run, and copied into EXPERIMENTS.md.

use horus_core::prelude::*;
use horus_layers::registry::build_stack;
use horus_net::NetConfig;
use horus_sim::SimWorld;
use std::time::Duration;

pub use horus_core;
pub use horus_layers;
pub use horus_net;
pub use horus_props;
pub use horus_sim;

/// Endpoint helper.
pub fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

/// The shared test group.
pub fn group() -> GroupAddr {
    GroupAddr::new(1)
}

/// Builds a world of `n` members running `desc`, merged into one view.
///
/// # Panics
///
/// Panics if the stack fails to build or the group does not form.
pub fn joined_world(
    n: u64,
    seed: u64,
    net: NetConfig,
    desc: &str,
    config: StackConfig,
) -> SimWorld {
    let mut w = SimWorld::new(seed, net);
    for i in 1..=n {
        let s = build_stack(ep(i), desc, config.clone()).expect("stack builds");
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=n {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    for i in 1..=n {
        assert_eq!(
            w.installed_views(ep(i)).last().expect("view").len(),
            n as usize,
            "group must form for {desc}"
        );
    }
    w
}

/// A single stack fed directly (no world): returns the stack ready for
/// hot-path measurements.
///
/// # Panics
///
/// Panics if the stack fails to build.
pub fn lone_stack(desc: &str, config: StackConfig) -> Stack {
    let mut s = build_stack(ep(1), desc, config).expect("stack builds");
    let _ = s.init();
    let _ = s.handle(StackInput::FromApp(Down::Join { group: group() }));
    s
}

/// Sends one cast through `tx` and feeds every produced frame into `rx`,
/// returning the number of CAST deliveries at `rx`.  The core send+receive
/// hot path with no simulator in between.
pub fn pump_one(tx: &mut Stack, rx: &mut Stack, body: &[u8]) -> usize {
    let msg = tx.new_message(body.to_vec());
    let fx = tx.handle(StackInput::FromApp(Down::Cast(msg)));
    let mut delivered = 0;
    for e in fx {
        if let Effect::NetCast { wire } = e {
            let fx2 = rx.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
            delivered +=
                fx2.iter().filter(|e| matches!(e, Effect::Deliver(Up::Cast { .. }))).count();
        }
    }
    delivered
}

/// Description string for a stack of `n` pass-through layers over COM.
pub fn nop_stack_desc(n: usize, opaque: bool) -> String {
    let layer = if opaque { "NOP_OPAQUE" } else { "NOP" };
    let mut parts = vec![layer; n];
    parts.push("COM");
    parts.join(":")
}
