//! Chaos test: everything the simulated network can do wrong, at once —
//! loss, duplication, garbling, jitter, repeated partitions, crashes —
//! against the full-featured stack.  Virtual synchrony and total order
//! must hold throughout; this is the paper's "simulates an environment
//! ... in which members can only fail and messages do not get lost"
//! claim under maximum duress.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload, WorkloadKind};
use horus_net::NetConfig;
use horus_sim::{check_total_order, check_virtual_synchrony};
use std::time::Duration;

fn chaos_net() -> NetConfig {
    let mut cfg = NetConfig::reliable();
    cfg.loss = 0.12;
    cfg.duplicate = 0.05;
    cfg.garble = 0.03;
    cfg.latency_max = Duration::from_millis(3); // heavy jitter => reordering
    cfg
}

#[test]
fn full_stack_survives_concurrent_chaos() {
    for seed in 1..=3 {
        let mut w = SimWorld::new(seed, chaos_net());
        for i in 1..=4 {
            let s = build_stack(ep(i), CANONICAL, StackConfig::default()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        for i in 2..=4 {
            w.down_at(SimTime::from_millis(7 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(5));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "seed {seed} ep{i}: group forms even under chaos"
            );
        }
        let t = w.now();
        let wl = Workload {
            kind: WorkloadKind::AllToAll,
            senders: (1..=4).map(ep).collect(),
            slots: 12,
            interval: Duration::from_millis(2),
            payload: 48,
        };
        wl.schedule(&mut w, t + Duration::from_millis(1));
        w.crash_at(t + Duration::from_millis(9), ep(4));
        w.run_for(Duration::from_secs(8));
        let logs = logs(&w, 4);
        let v = check_virtual_synchrony(&logs);
        assert!(v.is_empty(), "seed {seed}: {v:?}");
        let v = check_total_order(&logs);
        assert!(v.is_empty(), "seed {seed}: {v:?}");
        // Survivors delivered the survivors' entire workload.
        for i in 1..=3u64 {
            let got = w.delivered_casts(ep(i)).len();
            assert!(got >= 36, "seed {seed} ep{i}: only {got} deliveries");
        }
        // Garbled frames were actually injected and discarded, not parsed.
        assert!(w.net_stats().garbled > 0, "seed {seed}: chaos must have bitten");
    }
}

#[test]
fn partition_storm_with_chaos_heals() {
    let mut cfg = chaos_net();
    cfg.loss = 0.08;
    let mut w = SimWorld::new(9, cfg);
    let desc = "MERGE(contacts=1,period=60):MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
    for i in 1..=4 {
        let s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    w.run_for(Duration::from_secs(6));
    for round in 0..2 {
        let t = w.now();
        w.partition_at(t, &[&[ep(1), ep(4)], &[ep(2), ep(3)]]);
        w.heal_at(t + Duration::from_millis(1200));
        w.run_for(Duration::from_secs(10));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "round {round} ep{i}: healed"
            );
        }
    }
    let violations = check_virtual_synchrony(&logs(&w, 4));
    assert!(violations.is_empty(), "{violations:?}");
}
