//! Tracing overhead smoke benchmark — the headline numbers for the
//! observability subsystem, recorded in `BENCH_trace.json` (style of
//! `BENCH_dispatch.json`).
//!
//! Four claims, measured over real threads on the loopback transport with
//! 64-byte casts through `NAK:COM` under the sharded batched executor:
//!
//! 1. **Disabled tracing is free**: a stack with a `NullSink` tracer
//!    installed moves the flood at ≥ 97% of an untraced stack's rate.
//!    Every event site branches on one cached flag, and `set_tracer`
//!    caches the sink's `interested()` answer — `false` for `NullSink` —
//!    so neither arm constructs a single event.
//! 2. **Sampled tracing is close to free**: a 1-in-64 `SamplingSink` in
//!    front of a ring (the soak-campaign default) sustains ≥ 95% of the
//!    untraced rate — the per-event cost is one relaxed fetch-add plus
//!    the occasional forwarded record.
//! 3. **Enabled tracing is cheap enough to leave on**: the lock-free
//!    `TraceRing` arm records every layer crossing, frame send and
//!    delivery of the flood and still completes; its events/sec and the
//!    rate ratio against the untraced arm are recorded in the JSON (no
//!    assertion — ring cost is workload-dependent; the number is the
//!    deliverable).
//! 4. **The v2 binary format earns its bytes**: the same capture encodes
//!    ≥ 3× smaller than the v1 text form (varints, string interning,
//!    delta timestamps).
//!
//! Ignored by default: it is a timing test and only means anything in
//! release mode.  Run with
//! `cargo test --release --test trace_smoke -- --ignored`.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus_core::trace::{NullSink, SamplingSink, TraceSink};
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use horus_trace::{serialize_trace, serialize_trace_v2, TraceRing};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

const BODY: usize = 64;
const FLOOD: usize = 15_000;

/// Shard count matched to the hardware, as in `dispatch_smoke`.
fn hw_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(2)
}

/// Floods a 2-member `NAK:COM` group through the sharded batched executor
/// with `tracer` installed on both stacks (or none); returns msgs/sec.
fn flood(tracer: Option<Arc<dyn TraceSink>>) -> f64 {
    let cfg = ShardConfig::with_shards(hw_shards()).batch_max(64).record_upcalls(false);
    let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
    let g = GroupAddr::new(1);
    for i in 1..=2 {
        let mut s = build_stack(ep(i), "NAK:COM", StackConfig::default()).unwrap();
        if let Some(t) = &tracer {
            s.set_tracer(t.clone());
        }
        ex.add_stack(s);
        ex.down(ep(i), Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(10));
    let start = Instant::now();
    for k in 0..FLOOD {
        ex.cast_bytes(ep(1), vec![(k % 251) as u8; BODY]);
    }
    let ok = ex.wait_until(Duration::from_secs(60), |ex| ex.cast_count(ep(2)) >= FLOOD);
    let rate = FLOOD as f64 / start.elapsed().as_secs_f64();
    assert!(ok, "receiver saw {}/{FLOOD}", ex.cast_count(ep(2)));
    ex.stop();
    rate
}

/// One flood with a fresh ring; returns (msgs/sec, records the ring absorbed).
fn flood_ring() -> (f64, usize) {
    let ring = Arc::new(TraceRing::with_capacity(1 << 17));
    let rate = flood(Some(ring.clone()));
    (rate, ring.drain().len() + ring.dropped() as usize)
}

/// One flood through a 1-in-64 [`SamplingSink`] in front of a fresh ring —
/// the configuration soak campaigns leave on.
fn flood_sampled() -> f64 {
    let ring = Arc::new(TraceRing::with_capacity(1 << 17));
    flood(Some(Arc::new(SamplingSink::new(ring, 64))))
}

#[test]
#[ignore = "timing smoke: run in release mode with -- --ignored"]
fn trace_smoke() {
    // Warm-up, then best-of-5 per arm with the arms *interleaved*: the
    // gate compares two arms that should be identical, so what must not
    // leak into the ratio is scheduler drift between measurement blocks.
    let _ = flood(None);
    let _ = flood_ring();
    let mut off_rate = f64::MIN;
    let mut null_rate = f64::MIN;
    let mut samp_rate = f64::MIN;
    let (mut ring_rate, mut ring_records) = (f64::MIN, 0);
    for _ in 0..5 {
        off_rate = off_rate.max(flood(None));
        null_rate = null_rate.max(flood(Some(Arc::new(NullSink))));
        samp_rate = samp_rate.max(flood_sampled());
        let (r, n) = flood_ring();
        if r > ring_rate {
            (ring_rate, ring_records) = (r, n);
        }
    }
    // Escalate under noise: the gated arms run (nearly) identical code when
    // the hook is free, so their peaks converge given enough trials — extra
    // rounds absorb a lucky scheduler tail on one arm, while a real hook
    // cost keeps the gated arm permanently short.
    for _ in 0..5 {
        if null_rate >= 0.97 * off_rate && samp_rate >= 0.95 * off_rate {
            break;
        }
        off_rate = off_rate.max(flood(None));
        null_rate = null_rate.max(flood(Some(Arc::new(NullSink))));
        samp_rate = samp_rate.max(flood_sampled());
    }

    // Format sizing: one more capture, serialized both ways.  The v2 gate
    // is structural (varints + interning + delta timestamps vs text), so a
    // single capture suffices — size is deterministic given the records.
    let ring = Arc::new(TraceRing::with_capacity(1 << 17));
    let _ = flood(Some(ring.clone()));
    let records = ring.drain();
    assert!(!records.is_empty(), "format-sizing capture came back empty");
    let v1_bytes = serialize_trace(&[], &records).len();
    let v2_bytes = serialize_trace_v2(&[], &records).len();
    let v1_bpr = v1_bytes as f64 / records.len() as f64;
    let v2_bpr = v2_bytes as f64 / records.len() as f64;
    let v2_size_ratio = v1_bytes as f64 / v2_bytes as f64;
    // Records per second while the flood was in flight: the flood moved at
    // `ring_rate` msgs/sec and generated `ring_records / FLOOD` records each.
    let events_per_sec = ring_records as f64 * ring_rate / FLOOD as f64;

    let disabled_ratio = null_rate / off_rate;
    let sampled_ratio = samp_rate / off_rate;
    let enabled_ratio = ring_rate / off_rate;

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"trace_smoke\",\n",
            "  \"payload_bytes\": {},\n",
            "  \"msgs\": {},\n",
            "  \"untraced\": {{ \"msgs_per_sec\": {:.0} }},\n",
            "  \"null_sink\": {{ \"msgs_per_sec\": {:.0}, \"ratio_vs_untraced\": {:.3} }},\n",
            "  \"sampling_sink\": {{ \"msgs_per_sec\": {:.0}, \"ratio_vs_untraced\": {:.3}, ",
            "\"sample_every\": 64 }},\n",
            "  \"trace_ring\": {{ \"msgs_per_sec\": {:.0}, \"ratio_vs_untraced\": {:.3}, ",
            "\"records_per_flood\": {}, \"events_per_sec\": {:.0} }},\n",
            "  \"format\": {{ \"records\": {}, \"v1_bytes_per_record\": {:.1}, ",
            "\"v2_bytes_per_record\": {:.1}, \"v2_size_ratio\": {:.2} }},\n",
            "  \"note\": \"gates: null_sink >= 0.97, sampling_sink (1-in-64) >= 0.95, \
             v2_size_ratio >= 3.0; the ring arm is recorded, not gated — its cost scales \
             with records per message\"\n",
            "}}\n"
        ),
        BODY,
        FLOOD,
        off_rate,
        null_rate,
        disabled_ratio,
        samp_rate,
        sampled_ratio,
        ring_rate,
        enabled_ratio,
        ring_records,
        events_per_sec,
        records.len(),
        v1_bpr,
        v2_bpr,
        v2_size_ratio,
    );
    std::fs::write(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_trace.json"), &json).unwrap();
    println!("{json}");

    assert!(
        disabled_ratio >= 0.97,
        "disabled-tracing overhead gate: NullSink arm ran at {:.1}% of untraced ({:.0} vs {:.0} msgs/sec)",
        disabled_ratio * 100.0,
        null_rate,
        off_rate,
    );
    assert!(
        sampled_ratio >= 0.95,
        "sampled-tracing overhead gate: 1-in-64 arm ran at {:.1}% of untraced ({:.0} vs {:.0} msgs/sec)",
        sampled_ratio * 100.0,
        samp_rate,
        off_rate,
    );
    assert!(
        v2_size_ratio >= 3.0,
        "v2 size gate: {v1_bytes} v1 bytes vs {v2_bytes} v2 bytes over {} records is only {v2_size_ratio:.2}x",
        records.len(),
    );
    assert!(ring_records > 0, "the ring arm must actually capture events");
}
