//! E4 (end-to-end) — closing the §6 loop for *random* requirement sets:
//! request properties → plan a minimal stack → build it through the
//! registry → run it in the simulator → observe the requested behaviour.
//!
//! This is the paper's admission-control story executed literally: the
//! application only ever names properties; everything below is derived.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::props::{derive_stack, plan_minimal_stack, Prop, PropSet};
use horus::sim::{SimWorld, Workload};
use horus_net::NetConfig;
use horus_sim::{check_fifo, check_total_order, check_virtual_synchrony, DeliveryLog};
use proptest::prelude::*;
use std::time::Duration;

/// Makes a planned stack runnable: merge traffic must cross views.
fn runnable(stack: &[&'static str]) -> String {
    stack
        .iter()
        .map(|&n| if n == "COM" { "COM(promiscuous=true)".to_string() } else { n.to_string() })
        .collect::<Vec<_>>()
        .join(":")
}

fn run_planned(required: PropSet, seed: u64) -> Result<(), TestCaseError> {
    let network = PropSet::of(&[Prop::BestEffort]);
    let Ok(stack) = plan_minimal_stack(required, network) else {
        return Ok(()); // unsatisfiable requests are allowed to be refused
    };
    let provided = derive_stack(&stack, network).expect("planned stacks are well-formed");
    prop_assert!(provided.is_superset(required));
    if stack.is_empty() {
        return Ok(());
    }
    let desc = runnable(&stack);
    let has_membership = provided.contains(Prop::ConsistentViews);
    let mut w = SimWorld::new(seed, NetConfig::reliable());
    for i in 1..=3 {
        let s = build_stack(ep(i), &desc, StackConfig::default())
            .unwrap_or_else(|e| panic!("{desc}: {e}"));
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    if has_membership {
        for i in 2..=3 {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(3));
        for i in 1..=3 {
            prop_assert_eq!(
                w.installed_views(ep(i)).last().expect("view").len(),
                3,
                "{} must form a group",
                &desc
            );
        }
    }
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 12);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    w.run_for(Duration::from_secs(3));
    let logs: Vec<DeliveryLog> =
        (1..=3).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();

    // Observe what was promised.
    for i in 1..=3 {
        prop_assert_eq!(
            w.delivered_casts(ep(i)).len(),
            12,
            "{} ep{} must deliver the workload",
            &desc,
            i
        );
    }
    if provided.contains(Prop::FifoMulticast) {
        prop_assert!(check_fifo(&logs, Workload::parse).is_empty(), "{desc}: FIFO");
    }
    if provided.contains(Prop::TotalOrder) {
        prop_assert!(check_total_order(&logs).is_empty(), "{desc}: total order");
    }
    if provided.contains(Prop::VirtualSync) {
        prop_assert!(check_virtual_synchrony(&logs).is_empty(), "{desc}: VS");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn planned_stacks_deliver_their_promises(req_bits in 0u16..u16::MAX, seed in 0u64..1000) {
        run_planned(PropSet::from_bits(req_bits), seed)?;
    }
}

#[test]
fn headline_requests_end_to_end() {
    for (i, req) in [
        PropSet::of(&[Prop::FifoMulticast]),
        PropSet::of(&[Prop::VirtualSync]),
        PropSet::of(&[Prop::TotalOrder]),
        PropSet::of(&[Prop::TotalOrder, Prop::Stability]),
        PropSet::of(&[Prop::Safe]),
        PropSet::of(&[Prop::Causal]),
    ]
    .into_iter()
    .enumerate()
    {
        run_planned(req, 900 + i as u64).unwrap();
    }
}
