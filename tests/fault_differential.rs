//! Differential equivalence for the set-based partition rule.
//!
//! `FaultRule::Partition` is a declarative window over a symmetric split;
//! its semantics are *defined* to equal the cross-product of one-way cuts
//! between the sides.  This suite holds the implementation to that
//! definition byte-for-byte: two worlds built from the same seed, one
//! carrying the partition rule and one carrying the equivalent
//! `OneWayCut` pairs, must produce identical delivery transcripts — same
//! views, same casts, same timestamps.  Any divergence (a missed
//! direction, an off-by-one on the window edge, an RNG draw consumed by
//! one encoding but not the other) shows up as a transcript diff.

mod common;

use common::*;
use horus::prelude::*;
use horus::sim::soak::transcript;
use horus::sim::Workload;
use horus_net::{FaultRule, NetConfig};
use std::time::Duration;

/// Runs a 3-member VSYNC world with steady traffic and the given fault
/// rules installed 2ms after assembly; returns the delivery transcript.
fn run_with(rules: Vec<FaultRule>, seed: u64) -> String {
    let mut w = joined_world(3, seed, NetConfig::reliable(), VSYNC);
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 12);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    for r in rules {
        w.fault_at(t + Duration::from_millis(2), r);
    }
    w.run_for(Duration::from_secs(4));
    transcript(&w, &[ep(1), ep(2), ep(3)])
}

/// The partition window used by every encoding below, relative to the
/// settle time of `joined_world` (3s).
fn window() -> (SimTime, Option<SimTime>) {
    let start = SimTime::from_millis(3010);
    (start, Some(start + Duration::from_millis(800)))
}

fn partition_encoding() -> Vec<FaultRule> {
    let (start, end) = window();
    vec![FaultRule::Partition { sides: vec![vec![ep(1)], vec![ep(2), ep(3)]], start, end }]
}

fn cut_pair_encoding() -> Vec<FaultRule> {
    let (start, end) = window();
    let mut rules = Vec::new();
    for &(a, b) in &[(ep(1), ep(2)), (ep(1), ep(3))] {
        rules.push(FaultRule::OneWayCut { from: a, to: b, start, end });
        rules.push(FaultRule::OneWayCut { from: b, to: a, start, end });
    }
    rules
}

#[test]
fn partition_equals_its_oneway_cut_cross_product() {
    for seed in [7, 19] {
        let via_partition = run_with(partition_encoding(), seed);
        let via_cuts = run_with(cut_pair_encoding(), seed);
        assert_eq!(
            via_partition, via_cuts,
            "seed {seed}: the set-based partition must behave exactly like its cut pairs"
        );
    }
}

#[test]
fn the_window_actually_bites() {
    // Guard against a vacuous equivalence: a partition that never dropped a
    // frame would also "equal" its cut encoding.  The faulted transcript
    // must differ from the fault-free one (recovered casts arrive late).
    let faulted = run_with(partition_encoding(), 7);
    let clean = run_with(Vec::new(), 7);
    assert_ne!(faulted, clean, "the partition window must perturb delivery");
}

#[test]
fn half_the_cuts_are_not_a_partition() {
    // Dropping only the outbound directions models an asymmetric fault and
    // must NOT match the symmetric partition: ep:1's frames die, but the
    // replies still reach it, so NAK recovery behaves differently.
    let (start, end) = window();
    let outbound_only = vec![
        FaultRule::OneWayCut { from: ep(1), to: ep(2), start, end },
        FaultRule::OneWayCut { from: ep(1), to: ep(3), start, end },
    ];
    let asymmetric = run_with(outbound_only, 7);
    let symmetric = run_with(partition_encoding(), 7);
    assert_ne!(asymmetric, symmetric, "cut direction must matter");
}
