//! Zero-allocation discipline on the steady-state dispatch path.
//!
//! The PR 3 executor work promises that dispatching an event through a
//! *warm* stack allocates nothing in the dispatch machinery itself: the
//! [`EffectSink`] is reused, the stack's scratch and emit buffers are
//! reused, and the only allocations left on a cast are the inherent ones
//! (building the wire frame's header block).  This test pins that down
//! with a counting global allocator:
//!
//! * a `Tick` or stray-`Timer` dispatch on a warm stack allocates **zero**
//!   bytes;
//! * a batch of N casts allocates exactly N × the single-cast cost — no
//!   per-event machinery allocations appear at any batch size;
//! * the `Vec`-returning `handle` shim costs extra allocations per call,
//!   which is precisely what `handle_into`/`handle_batch` eliminate;
//! * `StackStats::dispatch_buf_grows` stays at zero once warm.
//!
//! Everything runs in a single `#[test]` so no concurrent test thread can
//! pollute the counter.

use bytes::Bytes;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn cast_input(stack: &Stack, k: u8) -> StackInput {
    StackInput::FromApp(Down::Cast(stack.new_message(Bytes::from(vec![k; 16]))))
}

#[test]
fn steady_state_dispatch_does_not_allocate() {
    let mut stack = build_stack(EndpointAddr::new(1), "SEQNO:COM", StackConfig::default()).unwrap();
    let _ = stack.init();
    let mut sink = EffectSink::with_capacity(64);

    // Warm up: grow the sink, scratch, and emit buffers to steady state.
    for k in 0..32u8 {
        stack.handle_into(cast_input(&stack, k), &mut sink);
        sink.clear();
    }
    stack.handle_into(StackInput::Tick { now: SimTime::from_nanos(1) }, &mut sink);
    stack.handle_into(
        StackInput::Timer { layer: 0, token: 99, now: SimTime::from_nanos(2) },
        &mut sink,
    );
    sink.clear();

    // 1. Pure dispatch machinery (tick, stray timer): zero allocations.
    let before = allocs();
    stack.handle_into(StackInput::Tick { now: SimTime::from_nanos(3) }, &mut sink);
    stack.handle_into(
        StackInput::Timer { layer: 0, token: 7, now: SimTime::from_nanos(4) },
        &mut sink,
    );
    let tick_allocs = allocs() - before;
    sink.clear();
    assert_eq!(tick_allocs, 0, "tick/timer dispatch on a warm stack must not allocate");

    // 2. Single warm cast: only the inherent wire-building allocations.
    let input = cast_input(&stack, 40);
    let before = allocs();
    stack.handle_into(input, &mut sink);
    let per_cast = allocs() - before;
    sink.clear();
    assert!(per_cast > 0, "a cast builds a wire frame; expected some inherent allocations");

    // 3. A batch of N casts costs exactly N single casts: the machinery
    //    (sink, scratch, emit, batch loop) adds nothing per event.
    const N: u64 = 64;
    let mut inputs: Vec<StackInput> = Vec::with_capacity(N as usize);
    for k in 0..N {
        inputs.push(cast_input(&stack, (k % 251) as u8));
    }
    let before = allocs();
    stack.handle_batch(inputs.drain(..), &mut sink);
    let batch_allocs = allocs() - before;
    assert_eq!(
        batch_allocs,
        N * per_cast,
        "batch of {N} casts must cost exactly {N} x the single-cast inherent allocations"
    );
    assert_eq!(sink.len() as u64, N, "one NetCast effect per input");
    sink.clear();

    // 4. The Vec-returning shim pays per call what the sink path saves.
    let input = cast_input(&stack, 41);
    let before = allocs();
    let fx = stack.handle(input);
    let shim_allocs = allocs() - before;
    drop(fx);
    assert!(
        shim_allocs > per_cast,
        "handle() shim (fresh Vec per call, {shim_allocs} allocs) should cost more than \
         sink dispatch ({per_cast} allocs)"
    );

    // 5. The stack's own buffers reached steady state long ago.
    let grows_at_warm = stack.stats().dispatch_buf_grows;
    for k in 0..64u8 {
        stack.handle_into(cast_input(&stack, k), &mut sink);
        sink.clear();
    }
    assert_eq!(
        stack.stats().dispatch_buf_grows,
        grows_at_warm,
        "scratch/emit buffers must not grow after warmup"
    );
}
