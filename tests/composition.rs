//! E2 — Figure 1: run-time LEGO-block composition.
//!
//! Stacks assemble at run time from the ~thirty-layer catalogue, utility
//! layers interleave freely, independently configured applications coexist
//! in one process, and mismatched compositions are firewalled rather than
//! misparsed.

mod common;

use common::*;
use horus::layers::registry::{build_stack, layer_names};
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::time::Duration;

#[test]
fn the_catalogue_has_about_thirty_protocols() {
    let names = layer_names();
    assert!(
        names.len() >= 30,
        "the paper's 'library of about thirty different protocols': {} found",
        names.len()
    );
}

#[test]
fn utility_layers_interleave_freely() {
    // Mix seven catalogue layers around the FIFO core, in an order nobody
    // planned for; everything still works because all speak the HCPI.
    let desc = "TRACE:COMPRESS:SIGN(key=7):ACCT:ENCRYPT(key=9):LOGGER:CHKSUM:NAK:COM";
    let mut w = SimWorld::new(1, NetConfig::lossy(0.1));
    for i in 1..=2 {
        let s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    let body = b"compose me like LEGO".to_vec();
    for _ in 0..10 {
        w.cast_bytes(ep(1), body.clone());
    }
    w.run_for(Duration::from_secs(2));
    let got = w.delivered_casts(ep(2));
    assert_eq!(got.len(), 10);
    for (_, b, _) in &got {
        assert_eq!(&b[..], &body[..], "transforms must invert exactly");
    }
}

#[test]
fn deep_stacks_of_every_depth_build_and_run() {
    for depth in 1..=10 {
        let mut desc: Vec<&str> = vec!["NOP_OPAQUE"; depth];
        desc.push("NAK");
        desc.push("COM");
        let desc = desc.join(":");
        let mut w = SimWorld::new(depth as u64, NetConfig::reliable());
        for i in 1..=2 {
            let s = build_stack(ep(i), &desc, StackConfig::default()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        w.cast_bytes(ep(1), &b"deep"[..]);
        w.run_for(Duration::from_millis(100));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1, "depth {depth}");
    }
}

#[test]
fn independently_configured_apps_share_a_process() {
    // §1: "Horus can support many applications concurrently, each of which
    // can be configured individually."  Three groups, three stacks, one
    // world; traffic never crosses.
    let configs = [
        (GroupAddr::new(10), "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)", 1u64),
        (GroupAddr::new(20), "CHKSUM:NAK:COM", 11u64),
        (GroupAddr::new(30), "COMPRESS:SEQNO:COM", 21u64),
    ];
    let mut w = SimWorld::new(5, NetConfig::reliable());
    for &(g, desc, base) in &configs {
        for i in base..base + 2 {
            let s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), g);
        }
    }
    // Form the membership group.
    w.down(ep(2), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_secs(2));
    for &(_, _, base) in &configs {
        w.cast_bytes(ep(base), format!("group-{base}").into_bytes());
    }
    w.run_for(Duration::from_secs(1));
    for &(_, _, base) in &configs {
        let got = w.delivered_casts(ep(base + 1));
        assert_eq!(got.len(), 1, "group {base} isolated");
        assert_eq!(got[0].1, format!("group-{base}").into_bytes());
    }
}

#[test]
fn mismatched_stacks_cannot_misparse_each_other() {
    // Two members of one transport group running different compositions:
    // the fingerprint drops the frames instead of letting NAK parse TOTAL
    // headers as sequence numbers.
    let mut w = SimWorld::new(6, NetConfig::reliable());
    let a = build_stack(ep(1), "NAK:COM", StackConfig::default()).unwrap();
    let b = build_stack(ep(2), "FRAG:NAK:COM", StackConfig::default()).unwrap();
    w.add_endpoint(a);
    w.add_endpoint(b);
    w.join(ep(1), group());
    w.join(ep(2), group());
    for k in 0..5u8 {
        w.cast_bytes(ep(1), vec![k]);
    }
    w.run_for(Duration::from_millis(200));
    assert!(w.delivered_casts(ep(2)).is_empty());
    assert!(w.stack_stats(ep(2)).unwrap().fingerprint_drops >= 5);
}

#[test]
fn header_modes_are_a_runtime_choice_per_stack() {
    // The same composition in aligned and compact header modes: identical
    // behaviour, different wire sizes (§10 problem 3).
    let mut sizes = Vec::new();
    for mode in [HeaderMode::Aligned, HeaderMode::Compact] {
        let config = StackConfig { mode, ..StackConfig::default() };
        let mut w = SimWorld::new(7, NetConfig::reliable());
        for i in 1..=2 {
            let s = build_stack(ep(i), "FRAG:NAK:COM", config.clone()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        w.cast_bytes(ep(1), vec![0u8; 64]);
        w.run_for(Duration::from_millis(100));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1, "{mode:?}");
        sizes.push(w.stack_stats(ep(1)).unwrap().header_bytes_sent);
    }
    assert!(
        sizes[1] < sizes[0],
        "compact headers ({}) must undercut aligned ({})",
        sizes[1],
        sizes[0]
    );
}

#[test]
fn every_catalogue_layer_participates_in_some_working_stack() {
    // Each layer runs in a minimal sensible composition and traffic still
    // flows end to end (smoke coverage for the whole catalogue).
    let compositions: Vec<String> = layer_names()
        .into_iter()
        .filter(|n| !matches!(*n, "COM" | "MERGE" | "NNAK"))
        .map(|n| match n {
            // Ordering/membership-dependent layers need their substrate.
            "TOTAL" | "TOTAL_REF" | "CAUSAL" => {
                format!("{n}:MBRSHIP:FRAG:NAK:COM(promiscuous=true)")
            }
            "SAFE" => "SAFE:STABLE:MBRSHIP:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "STABLE" | "PINWHEEL" => {
                format!("{n}:MBRSHIP:FRAG:NAK:COM(promiscuous=true)")
            }
            "MBRSHIP" => "MBRSHIP:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "SECURE" => "SECURE:MBRSHIP:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "BMS" => "VSS(auto_ok=true):BMS:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "VSS" => "VSS(auto_ok=true):BMS:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "FLUSH" => "FLUSH:VSS:BMS:FRAG:NAK:COM(promiscuous=true)".to_string(),
            "FRAG" => "FRAG:NAK:COM".to_string(),
            "NAK" | "NAK_REF" => format!("{n}:COM"),
            "NFRAG" => "NFRAG:COM".to_string(),
            "TS" => "TS:NAK:COM".to_string(),
            "DROP" => "NAK:DROP(nth=3):COM".to_string(),
            other => format!("{other}:NAK:COM"),
        })
        .collect();
    for (k, desc) in compositions.iter().enumerate() {
        let needs_join = desc.contains("MBRSHIP") || desc.contains("BMS");
        let mut w = SimWorld::new(100 + k as u64, NetConfig::reliable());
        for i in 1..=2 {
            let s = build_stack(ep(i), desc, StackConfig::default())
                .unwrap_or_else(|e| panic!("{desc}: {e}"));
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        if needs_join {
            w.down(ep(2), Down::Merge { contact: ep(1) });
            w.run_for(Duration::from_secs(2));
        }
        w.cast_bytes(ep(1), &b"smoke"[..]);
        w.run_for(Duration::from_secs(2));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1, "stack {desc} must deliver end to end");
    }
}
