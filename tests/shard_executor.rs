//! End-to-end coverage of the sharded run-to-completion executor plus the
//! accounting-parity contract between the transport's `LoopbackStats` and
//! the per-stack `StackStats`: every frame the transport claims to have
//! queued must show up in exactly one stack's counters (or in the
//! dropped-on-closed-channel counter), with nothing invented and nothing
//! lost — the satellite-2 counterpart of the simulated net's `NetStats`
//! parity tests.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use std::time::Duration;

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

const GROUPS: u64 = 3;
const CASTS: usize = 25;

/// 3 disjoint 2-member groups over single-layer NOP stacks (which add no
/// protocol chatter, so transport and stack counters can be equated
/// exactly), spread across 2 shards.
#[test]
fn multi_group_delivery_with_accounting_parity() {
    let net = LoopbackNet::new();
    let mut ex = ShardExecutor::new(net.clone(), ShardConfig::with_shards(2).batch_max(16));
    for gi in 0..GROUPS {
        let g = GroupAddr::new(gi + 1);
        for m in 0..2 {
            let e = ep(gi * 2 + m + 1);
            let s = build_stack(e, "NOP", StackConfig::default()).unwrap();
            ex.add_stack(s);
            ex.down(e, Down::Join { group: g });
        }
    }
    std::thread::sleep(Duration::from_millis(20));
    for k in 0..CASTS {
        for gi in 0..GROUPS {
            ex.cast_bytes(ep(gi * 2 + 1), vec![(k % 251) as u8; 8]);
        }
    }
    // Every member — senders included, loopback delivers to the whole
    // group — sees every cast of its own group and none of the others'.
    let done = ex.wait_until(Duration::from_secs(10), |ex| {
        (1..=GROUPS * 2).all(|i| ex.cast_count(ep(i)) >= CASTS)
    });
    assert!(done, "all members see their group's casts");
    for i in 1..=GROUPS * 2 {
        assert_eq!(ex.cast_count(ep(i)), CASTS, "ep {i}: exactly its own group's casts");
    }

    // Accounting parity: transport counters vs stack counters.
    let total_casts = GROUPS * CASTS as u64;
    let by_ep = ex.stats_by_endpoint();
    let sent: u64 = by_ep.values().map(|s| s.msgs_sent).sum();
    let received: u64 = by_ep.values().map(|s| s.msgs_received).sum();
    let net_stats = net.stats();
    assert_eq!(sent, total_casts, "stacks sent exactly the app casts");
    assert_eq!(net_stats.frames_cast, total_casts, "transport saw each cast once");
    assert_eq!(net_stats.dropped_closed, 0, "no receiver went away");
    assert_eq!(net_stats.deliveries, total_casts * 2, "each cast fans out to both group members");
    assert_eq!(received, net_stats.deliveries, "every queued frame reached a stack");
    assert_eq!(net_stats.frames_sent, 0, "no point-to-point sends in this workload");

    // Work landed on both shards and went through the batch path.
    let per_shard = ex.shard_stats();
    assert_eq!(per_shard.len(), 2);
    assert!(per_shard.iter().all(|s| s.msgs_received > 0), "both shards processed frames");
    let total = ex.aggregate_stats();
    assert!(total.batches > 0 && total.batched_inputs >= total_casts);
    ex.stop();
}

/// Frames aimed at an endpoint whose receiver is gone are dropped and
/// *counted*, not lost silently — and don't disturb live members.
#[test]
fn dropped_receiver_is_counted_not_silent() {
    let net = LoopbackNet::new();
    let mut ex = ShardExecutor::new(net.clone(), ShardConfig::default());
    let g = GroupAddr::new(1);
    for i in 1..=2 {
        let s = build_stack(ep(i), "NOP", StackConfig::default()).unwrap();
        ex.add_stack(s);
        ex.down(ep(i), Down::Join { group: g });
    }
    // A bare transport endpoint joins the group, then its receiver drops.
    let rx = net.register(ep(99));
    net.join(g, ep(99));
    drop(rx);
    std::thread::sleep(Duration::from_millis(20));

    ex.cast_bytes(ep(1), &b"gone"[..]);
    assert!(ex.wait_until(Duration::from_secs(5), |ex| ex.cast_count(ep(2)) >= 1));
    let s = net.stats();
    assert_eq!(s.dropped_closed, 1, "the dead endpoint's copy is accounted as dropped");
    assert_eq!(s.deliveries, 2, "the live members still got theirs");
    net.deregister(ep(99));
    ex.stop();
}
