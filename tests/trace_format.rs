//! Property tests over the trace file formats: v1 text escaping survives
//! arbitrary payload bytes, the v2 binary format round-trips losslessly,
//! and both formats agree record-for-record on the same capture (the
//! invariant `horus-trace convert` and the CLI's auto-detection lean on).
//! Plus the latency `Histogram`'s accuracy contract: quantiles are exact
//! to the bucket, i.e. within 25% of the true rank statistic.

use horus_core::trace::{DropReason, TraceKind, KIND_NAMES};
use horus_core::{EndpointAddr, SimTime};
use horus_trace::{
    first_divergence, parse_trace, parse_trace_any, parse_trace_v2, parsed_from_record,
    serialize_parsed, serialize_trace, serialize_trace_v2, trace_to_v2, Histogram, ParsedTrace,
    TraceRecord,
};
use proptest::prelude::*;
use proptest::strategy::Func;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Layer / kind names must be `&'static str`: draw from pools.
const LAYERS: &[&str] = &["COM", "NAK", "FRAG", "FD", "MBRSHIP", "MERGE", "TOTAL"];
const UP_KINDS: &[&str] = &["CAST", "SEND", "VIEW", "BLOCK"];
const DROPS: &[DropReason] = &[
    DropReason::Decode,
    DropReason::Fingerprint,
    DropReason::Induced,
    DropReason::Loss,
    DropReason::Partition,
    DropReason::Mtu,
    DropReason::Unroutable,
];

/// Characters chosen to stress the v1 escaper: field/record separators,
/// the escape char itself, ASCII + Unicode whitespace (`line.trim()` bait),
/// control bytes, and multi-byte UTF-8.
const NASTY_CHARS: &[char] = &[
    ' ', '=', '%', '\t', '\n', '\r', '\u{0}', '\u{1b}', '\u{7f}', '\u{a0}', '\u{2028}', 'é', '日',
    '🦀', 'a', 'Z', '0', ':', ',', '#',
];

fn arb_text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..24);
    (0..len).map(|_| NASTY_CHARS[rng.gen_range(0..NASTY_CHARS.len())]).collect()
}

fn arb_ep(rng: &mut StdRng) -> EndpointAddr {
    // `ep:0` (world-global) is spelled NULL, not `new(0)`.
    match rng.gen_range(0..999u64) {
        0 => EndpointAddr::NULL,
        n => EndpointAddr::new(n),
    }
}

fn arb_kind(rng: &mut StdRng) -> TraceKind {
    let layer = LAYERS[rng.gen_range(0..LAYERS.len())];
    let ep = arb_ep(rng);
    // Mix canonical small values with full-range u64s.
    let n = |rng: &mut StdRng| -> u64 {
        if rng.gen_bool(0.5) {
            rng.gen_range(0..100)
        } else {
            rng.next_u64()
        }
    };
    match rng.gen_range(0..KIND_NAMES.len()) {
        0 => TraceKind::LayerDown { layer },
        1 => TraceKind::LayerUp { layer },
        2 => TraceKind::LayerTimer { layer, token: n(rng) },
        3 => TraceKind::FrameSend { cast: rng.next_u64() & 1 == 1, bytes: rng.gen_range(0..65536) },
        4 => TraceKind::FrameDeliver {
            from: ep,
            cast: rng.next_u64() & 1 == 1,
            bytes: rng.gen_range(0..65536),
            digest: n(rng),
            seq: n(rng),
        },
        5 => TraceKind::FrameDrop {
            digest: n(rng),
            seq: n(rng),
            reason: DROPS[rng.gen_range(0..DROPS.len())],
        },
        6 => TraceKind::TimerArm { layer: rng.gen_range(0..40), token: n(rng), delay_us: n(rng) },
        7 => TraceKind::TimerFire {
            layer: rng.gen_range(0..40),
            token: n(rng),
            digest: n(rng),
            seq: n(rng),
        },
        8 => TraceKind::AppDown {
            kind: UP_KINDS[rng.gen_range(0..UP_KINDS.len())],
            digest: n(rng),
            seq: n(rng),
        },
        9 => TraceKind::Deliver {
            kind: UP_KINDS[rng.gen_range(0..UP_KINDS.len())],
            src: n(rng),
            digest: n(rng),
        },
        10 => TraceKind::ViewInstall { view: arb_text(rng) },
        11 => TraceKind::Crash { digest: n(rng), seq: n(rng) },
        12 => TraceKind::Suspect { target: ep, digest: n(rng), seq: n(rng) },
        13 => TraceKind::InjectCrash,
        14 => TraceKind::InjectSuspect { observer: ep, target: arb_ep(rng) },
        15 => TraceKind::Partition { digest: n(rng), seq: n(rng) },
        16 => TraceKind::Heal { digest: n(rng), seq: n(rng) },
        17 => TraceKind::Fault { digest: n(rng), seq: n(rng) },
        _ => TraceKind::Note(arb_text(rng)),
    }
}

fn arb_record(rng: &mut StdRng) -> TraceRecord {
    let clock_len = rng.gen_range(0..4);
    TraceRecord {
        at: SimTime::from_nanos(if rng.gen_bool(0.8) {
            rng.gen_range(0..10_000_000_000)
        } else {
            rng.next_u64()
        }),
        ep: arb_ep(rng),
        clock: (0..clock_len).map(|_| (rng.gen_range(1..9u64), rng.gen_range(0..999u64))).collect(),
        kind: arb_kind(rng),
    }
}

fn arb_trace(rng: &mut StdRng) -> Vec<TraceRecord> {
    let len = rng.gen_range(0..40);
    (0..len).map(|_| arb_record(rng)).collect()
}

fn arb_meta(rng: &mut StdRng) -> Vec<(String, String)> {
    let keys = ["scenario", "seed", "window_us", "reduction"];
    let len = rng.gen_range(0..keys.len());
    (0..len).map(|i| (keys[i].to_string(), rng.gen_range(0..1000u64).to_string())).collect()
}

/// The parsed view both formats serialize from.
fn parsed(meta: &[(String, String)], records: &[TraceRecord]) -> ParsedTrace {
    ParsedTrace {
        meta: meta.iter().cloned().collect(),
        records: records.iter().map(parsed_from_record).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// v1 text: arbitrary payload strings (separators, `%`, Unicode
    /// whitespace, control bytes, multi-byte UTF-8) survive escape →
    /// line-parse → unescape unchanged.
    #[test]
    fn v1_escaping_roundtrips_arbitrary_payloads(text in Func(arb_text)) {
        let note = TraceRecord {
            at: SimTime::from_nanos(7),
            ep: EndpointAddr::new(1),
            clock: vec![],
            kind: TraceKind::Note(text.clone()),
        };
        let view = TraceRecord {
            at: SimTime::from_nanos(8),
            ep: EndpointAddr::new(2),
            clock: vec![(1, 2)],
            kind: TraceKind::ViewInstall { view: text.clone() },
        };
        let parsed = parse_trace(&serialize_trace(&[], &[note, view])).unwrap();
        prop_assert_eq!(parsed.records.len(), 2);
        prop_assert_eq!(parsed.records[0].text_field("text").unwrap(), text.clone());
        prop_assert_eq!(parsed.records[1].text_field("view").unwrap(), text);
    }

    /// v1 text: whole arbitrary traces parse back to exactly the view the
    /// records project to, and re-serialize byte-identically.
    #[test]
    fn v1_parses_to_the_record_view(records in Func(arb_trace), meta in Func(arb_meta)) {
        let text = serialize_trace(&meta, &records);
        let p = parse_trace(&text).unwrap();
        prop_assert_eq!(&p, &parsed(&meta, &records));
        prop_assert_eq!(serialize_parsed(&p), text);
    }

    /// v2 binary: encodes the same view v1 does, losslessly, and the
    /// header auto-detection routes both formats to the same parse.
    #[test]
    fn v2_roundtrips_and_matches_v1(records in Func(arb_trace), meta in Func(arb_meta)) {
        let expect = parsed(&meta, &records);
        let bytes = serialize_trace_v2(&meta, &records);
        prop_assert_eq!(&parse_trace_v2(&bytes).unwrap(), &expect);
        prop_assert_eq!(&parse_trace_any(&bytes).unwrap(), &expect);
        let text = serialize_trace(&meta, &records);
        prop_assert_eq!(&parse_trace_any(text.as_bytes()).unwrap(), &expect);
        // Re-encoding the parsed view is the `convert` loop: still lossless.
        prop_assert_eq!(&parse_trace_v2(&trace_to_v2(&expect)).unwrap(), &expect);
        prop_assert!(first_divergence(
            &parse_trace_v2(&bytes).unwrap().records,
            &parse_trace(&text).unwrap().records,
        ).is_none());
    }

    /// Histogram quantiles report the floor of the bucket holding the true
    /// rank statistic: never above it, never more than 25% below.
    #[test]
    fn histogram_quantiles_bound_the_exact_rank(
        vals in proptest::collection::vec(Func(|rng: &mut StdRng| -> u64 {
            if rng.gen_bool(0.5) { rng.gen_range(0..1000) } else { rng.next_u64() }
        }), 1..200),
        num in 0u64..=4,
    ) {
        let den = 4u64;
        let mut h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((vals.len() as u64 * num).div_ceil(den)).max(1) as usize;
        let exact = sorted[rank - 1];
        let q = h.quantile(num, den);
        prop_assert!(q <= exact, "quantile {} above exact {}", q, exact);
        prop_assert!(
            u128::from(exact) <= u128::from(q) + u128::from(q / 4) + 1,
            "quantile {} more than 25% below exact {}", q, exact
        );
    }

    /// Merging histograms is the same as observing the concatenation, and
    /// observation order never matters.
    #[test]
    fn histogram_merge_equals_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..60),
        b in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in b.iter().rev() {
            hb.record(v);
        }
        for &v in &b {
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &hall);
        prop_assert_eq!(ha.count(), (a.len() + b.len()) as u64);
    }
}
