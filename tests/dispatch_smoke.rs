//! Dispatch-model smoke benchmark — the headline numbers for PR 3,
//! recorded in `BENCH_dispatch.json` (style of `BENCH_packing.json`).
//!
//! Two claims, measured over real threads on the loopback transport with
//! 64-byte casts through `NAK:COM`:
//!
//! 1. **Batching wins**: the sharded executor (frames delivered straight
//!    into the owning shard's queue, drained in bursts of 64 through one
//!    reusable `EffectSink`) moves a flood at ≥ 1.5× the per-event
//!    event-queue executor (per frame: pump-thread hop + input-queue hop,
//!    a condvar wake each).
//! 2. **Shards scale**: on a multi-group workload, 4 shards beat 1 shard
//!    by ≥ 2× — *when the hardware can run 4 workers at once*.  The
//!    assertion is gated on `available_parallelism() >= 4` and the
//!    measured parallelism is recorded in the JSON, so single-core runs
//!    report honest numbers instead of a fictional speedup.
//!
//! Ignored by default: it is a timing test and only means anything in
//! release mode.  Run with
//! `cargo test --release --test dispatch_smoke -- --ignored`.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use horus_sim::threaded::{DispatchModel, ThreadedEndpoint};
use std::time::{Duration, Instant};

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

const BODY: usize = 64;
const FLOOD: usize = 15_000;

/// Shard count matched to the hardware: extra workers on a starved box
/// only add context switches, exactly as extra threads did in §10.
fn hw_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(2)
}

/// Floods a 2-member `NAK:COM` group through the per-event event-queue
/// executor; returns msgs/sec (cast burst → last delivery).
fn flood_event_queue() -> f64 {
    let net = LoopbackNet::new();
    let g = GroupAddr::new(1);
    let mut endpoints: Vec<ThreadedEndpoint> = (1..=2)
        .map(|i| {
            let s = build_stack(ep(i), "NAK:COM", StackConfig::default()).unwrap();
            ThreadedEndpoint::spawn(s, net.clone(), DispatchModel::EventQueue)
        })
        .collect();
    for e in &endpoints {
        e.down(Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(10));
    let start = Instant::now();
    for k in 0..FLOOD {
        endpoints[0].cast_bytes(vec![(k % 251) as u8; BODY]);
    }
    let ok = endpoints[1].wait_until(Duration::from_secs(60), |e| e.cast_count() >= FLOOD);
    let rate = FLOOD as f64 / start.elapsed().as_secs_f64();
    assert!(ok, "event_queue receiver saw {}/{FLOOD}", endpoints[1].cast_count());
    for e in &mut endpoints {
        e.stop();
    }
    rate
}

/// The same flood through the sharded executor; returns msgs/sec.
fn flood_sharded(shards: usize, batch_max: usize) -> f64 {
    let cfg = ShardConfig::with_shards(shards).batch_max(batch_max).record_upcalls(false);
    let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
    let g = GroupAddr::new(1);
    for i in 1..=2 {
        let s = build_stack(ep(i), "NAK:COM", StackConfig::default()).unwrap();
        ex.add_stack(s);
        ex.down(ep(i), Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(10));
    let start = Instant::now();
    for k in 0..FLOOD {
        ex.cast_bytes(ep(1), vec![(k % 251) as u8; BODY]);
    }
    let ok = ex.wait_until(Duration::from_secs(60), |ex| ex.cast_count(ep(2)) >= FLOOD);
    let rate = FLOOD as f64 / start.elapsed().as_secs_f64();
    assert!(ok, "sharded receiver saw {}/{FLOOD}", ex.cast_count(ep(2)));
    ex.stop();
    rate
}

const GROUPS: u64 = 4;
const PER_GROUP: usize = 400;

/// Floods `GROUPS` disjoint sender→receiver pairs under `shards` workers;
/// returns total msgs/sec.
fn flood_groups(shards: usize) -> f64 {
    let cfg = ShardConfig::with_shards(shards).batch_max(64).record_upcalls(false);
    let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
    for gi in 0..GROUPS {
        let g = GroupAddr::new(gi + 1);
        for m in 0..2 {
            let e = ep(gi * 2 + m + 1);
            ex.add_stack(build_stack(e, "NAK:COM", StackConfig::default()).unwrap());
            ex.down(e, Down::Join { group: g });
        }
    }
    std::thread::sleep(Duration::from_millis(10));
    let start = Instant::now();
    for k in 0..PER_GROUP {
        for gi in 0..GROUPS {
            ex.cast_bytes(ep(gi * 2 + 1), vec![(k % 251) as u8; BODY]);
        }
    }
    let ok = ex.wait_until(Duration::from_secs(60), |ex| {
        (0..GROUPS).all(|gi| ex.cast_count(ep(gi * 2 + 2)) >= PER_GROUP)
    });
    let rate = (GROUPS as usize * PER_GROUP) as f64 / start.elapsed().as_secs_f64();
    assert!(ok, "multi-group flood incomplete under {shards} shards");
    ex.stop();
    rate
}

/// Best of three trials — peak rates are what the scheduler can't steal.
fn best(f: impl Fn() -> f64) -> f64 {
    (0..3).map(|_| f()).fold(f64::MIN, f64::max)
}

#[test]
#[ignore = "timing smoke: run in release mode with -- --ignored"]
fn dispatch_smoke() {
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Warm-up, then best-of-3 per configuration.
    let shards = hw_shards();
    let _ = flood_event_queue();
    let _ = flood_sharded(shards, 64);
    let unbatched = best(flood_event_queue);
    let batched = best(|| flood_sharded(shards, 64));
    let speedup = batched / unbatched;

    let _ = flood_groups(1);
    let shards_1 = best(|| flood_groups(1));
    let shards_4 = best(|| flood_groups(4));
    let scaling = shards_4 / shards_1;

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"dispatch_smoke\",\n",
            "  \"payload_bytes\": {},\n",
            "  \"msgs\": {},\n",
            "  \"parallelism\": {},\n",
            "  \"unbatched_event_queue\": {{ \"msgs_per_sec\": {:.0} }},\n",
            "  \"sharded_batched\": {{ \"msgs_per_sec\": {:.0}, \"shards\": {}, \"batch_max\": 64 }},\n",
            "  \"batched_speedup\": {:.2},\n",
            "  \"shard_scaling\": {{ \"groups\": {}, \"casts_per_group\": {}, \"shards_1_msgs_per_sec\": {:.0}, \"shards_4_msgs_per_sec\": {:.0}, \"scaling_1_to_4\": {:.2} }},\n",
            "  \"note\": \"scaling_1_to_4 >= 2.0 is asserted only when parallelism >= 4; on fewer cores the extra workers time-slice one core and the honest measured ratio is recorded instead\"\n",
            "}}\n"
        ),
        BODY,
        FLOOD,
        parallelism,
        unbatched,
        batched,
        shards,
        speedup,
        GROUPS,
        PER_GROUP,
        shards_1,
        shards_4,
        scaling,
    );
    std::fs::write(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_dispatch.json"), &json)
        .expect("write BENCH_dispatch.json");
    eprintln!("{json}");

    assert!(
        speedup >= 1.5,
        "batched dispatch must beat the event-queue executor by 1.5x, got {speedup:.2}x \
         ({batched:.0} vs {unbatched:.0} msgs/s)"
    );
    if parallelism >= 4 {
        assert!(
            scaling >= 2.0,
            "4 shards must beat 1 shard by 2x on {parallelism} cores, got {scaling:.2}x"
        );
    } else {
        eprintln!(
            "skipping scaling assertion: {parallelism} core(s) available, need 4 \
             (measured ratio {scaling:.2}x recorded in BENCH_dispatch.json)"
        );
    }
}
