//! The DPOR soundness differential — the gate that lets the sleep-set
//! reduction replace the old endpoint-class heuristic.
//!
//! The claim the reduction must earn: skipping a sibling run never skips a
//! *state*.  For every registry scenario, exploring with the reduction on
//! and off must
//!
//! 1. reach the same verdict (clean, or the same oracle's violation),
//! 2. visit exactly the same set of world fingerprints when both sides
//!    exhaust their bounded space (a violation stops a search early, so
//!    coverage is only comparable on clean scenarios), and
//! 3. do it in no more runs than reduction-off — with strictly fewer
//!    wherever the scenario offers commuting deliveries at all.
//!
//! The old heuristic fails criterion 2 by construction (it *filtered the
//! option list* to one endpoint class, skipping cross-endpoint orderings
//! whose intermediate states are real); sleep sets pass it because they
//! only postpone events until a dependent step, and the sleep-aware
//! visited map re-explores any state first reached with a larger sleep set.
//!
//! Depths are tuned per scenario so the *unreduced* side exhausts within
//! test time — reduction-off is the expensive arm by definition.

use horus_check::{explore_collect, explore_parallel, CheckConfig, FpSet, Scenario};
use std::time::Duration;

/// Exploration bounds per scenario: `(depth, drops, crashes, suspects)`.
/// The fault budgets mirror how each scenario is meant to be explored
/// (token3's crash budget, token4's double budget, wedge's suspicion).
fn bounds(name: &str) -> (usize, u32, u32, u32) {
    match name {
        "flush3" => (5, 1, 0, 0),
        "flush4" => (3, 1, 0, 0),
        "unordered" => (4, 0, 0, 0),
        "fifo2" => (3, 1, 0, 0),
        "token3" => (3, 0, 1, 0),
        "token4" => (2, 0, 2, 0),
        "wedge" => (3, 0, 0, 1),
        "mergerace" => (4, 0, 0, 0),
        other => panic!("no differential bounds for scenario {other}"),
    }
}

fn cfg_for(name: &str) -> CheckConfig {
    let (depth, drops, crashes, suspects) = bounds(name);
    CheckConfig {
        window: Duration::from_micros(100),
        max_depth: depth,
        max_drops: drops,
        max_crashes: crashes,
        max_suspects: suspects,
        max_states: 400_000,
        max_runs: 400_000,
        ..CheckConfig::default()
    }
}

fn diff_one(name: &str) {
    let scenario = Scenario::by_name(name).expect("registered scenario");
    let cfg = cfg_for(name);
    let (dpor, dpor_fps) = explore_collect(scenario, &cfg);
    let (off, off_fps) =
        explore_collect(scenario, &CheckConfig { reduction: false, ..cfg.clone() });

    // Criterion 1: same verdict.  Counterexample *schedules* may differ —
    // the reduced search meets the bug along a different prefix — but the
    // failing oracle may not.
    assert_eq!(
        dpor.violation.as_ref().map(|v| v.oracle),
        off.violation.as_ref().map(|v| v.oracle),
        "{name}: reduction changed the verdict (dpor {:?} vs off {:?})",
        dpor.violation,
        off.violation
    );

    // Criterion 3: the reduction never adds meaningful work.  One wrinkle:
    // under a crash budget, induced crashes keep *clearing* the sleep sets
    // (a crash commutes with nothing), so the sleep-aware visited map sees
    // the same state reached with differing sleep sets and must re-explore
    // where the plain set would prune — a few percent of extra runs that
    // buy the coverage guarantee.  Crash-budget scenarios therefore get 5%
    // slack; everything else must be at-or-below reduction-off exactly.
    let slack = if cfg.max_crashes > 0 { off.runs / 20 } else { 0 };
    assert!(
        dpor.runs <= off.runs + slack,
        "{name}: DPOR ran more than reduction-off (+slack {slack}) ({} vs {})",
        dpor.runs,
        off.runs
    );

    // Criterion 2: identical coverage — only judgeable when both sides
    // exhausted (a violation or budget stop truncates either side's set).
    if dpor.exhausted && off.exhausted {
        assert_fp_sets_equal(name, &dpor_fps, &off_fps);
    }
}

fn assert_fp_sets_equal(name: &str, dpor: &FpSet, off: &FpSet) {
    let missed: Vec<u64> = off.difference(dpor).copied().collect();
    let extra: Vec<u64> = dpor.difference(off).copied().collect();
    assert!(
        missed.is_empty() && extra.is_empty(),
        "{name}: DPOR coverage diverged from reduction-off: {} fingerprints missed, {} extra \
         (dpor {} vs off {})",
        missed.len(),
        extra.len(),
        dpor.len(),
        off.len()
    );
}

/// Prints the per-scenario differential table (the raw material of
/// EXPERIMENTS.md E27).  Ignored by default: it is a report, not a gate.
#[test]
#[ignore = "report generator; run explicitly with --ignored --nocapture"]
fn dpor_differential_table() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "dpor", "off", "d-states", "o-states", "d-steps", "o-steps"
    );
    for s in Scenario::all() {
        let cfg = cfg_for(s.name);
        let (dpor, _) = explore_collect(s, &cfg);
        let (off, _) = explore_collect(s, &CheckConfig { reduction: false, ..cfg });
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            s.name, dpor.runs, off.runs, dpor.states, off.states, dpor.steps, off.steps
        );
    }
}

// One test per scenario so CI can run (and report) them independently, and
// so one scenario's regression doesn't mask another's.

#[test]
fn dpor_differential_flush3() {
    diff_one("flush3");
}

#[test]
fn dpor_differential_flush4() {
    diff_one("flush4");
}

#[test]
fn dpor_differential_unordered() {
    diff_one("unordered");
}

#[test]
fn dpor_differential_fifo2() {
    diff_one("fifo2");
}

#[test]
fn dpor_differential_token3() {
    diff_one("token3");
}

#[test]
fn dpor_differential_token4() {
    diff_one("token4");
}

#[test]
fn dpor_differential_wedge() {
    diff_one("wedge");
}

#[test]
fn dpor_differential_mergerace() {
    diff_one("mergerace");
}

/// The reduction must actually reduce somewhere: flush3's healed trio has
/// independent deliveries to spare, so if DPOR matches reduction-off run
/// for run here, the sleep sets are dead code.
#[test]
fn dpor_reduces_flush3_runs() {
    let scenario = Scenario::by_name("flush3").expect("registered scenario");
    let cfg = cfg_for("flush3");
    let (dpor, _) = explore_collect(scenario, &cfg);
    let (off, _) = explore_collect(scenario, &CheckConfig { reduction: false, ..cfg });
    assert!(dpor.exhausted && off.exhausted, "both sides must exhaust");
    assert!(
        dpor.runs < off.runs,
        "sleep sets pruned nothing on flush3 ({} vs {} runs)",
        dpor.runs,
        off.runs
    );
}

/// Worker-count determinism must survive the sleep sets: jobs now carry
/// sleep state, and the report has to stay a pure function of scenario and
/// config — not of which worker popped which job first.
#[test]
fn dpor_parallel_report_is_worker_count_independent() {
    for name in ["flush3", "mergerace"] {
        let scenario = Scenario::by_name(name).expect("registered scenario");
        let cfg = cfg_for(name);
        let one = explore_parallel(scenario, &cfg, 1);
        let four = explore_parallel(scenario, &cfg, 4);
        assert_eq!(one.runs, four.runs, "{name}: worker count changed the run set");
        assert_eq!(one.states, four.states, "{name}: worker count changed state accounting");
        assert_eq!(one.steps, four.steps, "{name}: worker count changed executed steps");
        assert_eq!(one.exhausted, four.exhausted, "{name}");
        assert_eq!(
            one.violation.map(|v| (v.oracle, v.choices)),
            four.violation.map(|v| (v.oracle, v.choices)),
            "{name}: worker count changed the verdict"
        );
    }
}

/// CoW snapshots vs deep clones: a pure mechanism swap — the explored
/// tree, the visited set, and the verdict must be identical; only clone
/// work differs (gated in the smoke benchmark, not here).
#[test]
fn dpor_cow_matches_deep_clone_exploration() {
    for name in ["flush3", "token3"] {
        let scenario = Scenario::by_name(name).expect("registered scenario");
        let cfg = cfg_for(name);
        let (cow, cow_fps) = explore_collect(scenario, &cfg);
        let (deep, deep_fps) =
            explore_collect(scenario, &CheckConfig { cow_snapshots: false, ..cfg });
        assert_eq!(cow.runs, deep.runs, "{name}: CoW changed the run set");
        assert_eq!(cow.states, deep.states, "{name}: CoW changed the state count");
        assert_eq!(cow.steps, deep.steps, "{name}: CoW changed executed steps");
        assert_fp_sets_equal(name, &cow_fps, &deep_fps);
    }
}
