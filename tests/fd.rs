//! FD heartbeat failure detection under the full membership stack.
//!
//! §5: the membership layer "receives failure notifications from a
//! failure-detector object" which "does not have to be correct in deciding
//! whether a process is to be considered faulty".  These tests run the FD
//! layer as that object — `MBRSHIP:FD:FRAG:NAK:COM` — and check both
//! directions of the contract: a real crash is detected and excluded
//! within a bounded number of heartbeat periods, and a *false* suspicion
//! (scripted through the detector hook) never permanently ejects a live
//! member.

mod common;

use common::*;
use horus::prelude::*;
use horus::sim::FailureDetector;
use horus_net::{FaultRule, NetConfig};
use horus_sim::check_virtual_synchrony;
use std::time::Duration;

/// The canonical stack with the FD detector spliced under MBRSHIP.  NAK's
/// own status-silence suspicion is pushed out to 60 s so FD is the *only*
/// failure detector in play.
const FD_STACK: &str = "MBRSHIP:FD:FRAG:NAK(fail_timeout=60000):COM(promiscuous=true)";

/// Same, with MERGE on top so a falsely ejected member re-merges on its
/// own.
const FD_MERGE_STACK: &str =
    "MERGE(contacts=1,period=60):MBRSHIP:FD:FRAG:NAK(fail_timeout=60000):COM(promiscuous=true)";

#[test]
fn crash_excluded_within_bounded_heartbeat_periods() {
    // FD defaults: period 25 ms, min_timeout 75 ms, margin 3, jitter 10 ms.
    // On a quiet LAN the EWMA hovers at the period, so suspicion fires
    // within ~margin × period + jitter ≈ 85 ms of the crash; the flush adds
    // at most a few round trips.  Ten heartbeat periods (250 ms) plus one
    // flush timeout (400 ms) is a generous, still-bounded envelope.
    for seed in 1..=3 {
        let mut w = joined_world(3, seed, NetConfig::reliable(), FD_STACK);
        let t_crash = w.now() + Duration::from_millis(50);
        w.crash_at(t_crash, ep(3));
        w.run_for(Duration::from_secs(2));
        for i in 1..=2u64 {
            let v = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(v.members(), &[ep(1), ep(2)], "seed {seed} ep{i}: crash excluded");
            let install_time = w
                .upcalls(ep(i))
                .iter()
                .filter_map(|(at, up)| match up {
                    Up::View(view) if view.len() == 2 => Some(*at),
                    _ => None,
                })
                .next()
                .expect("exclusion view install time");
            let bound = t_crash + Duration::from_millis(10 * 25 + 400);
            assert!(
                install_time <= bound,
                "seed {seed} ep{i}: exclusion at {install_time}, bound {bound}"
            );
        }
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty(), "seed {seed}");
    }
}

#[test]
fn scripted_false_suspicion_never_permanently_ejects() {
    // The scripted detector falsely accuses a perfectly healthy member at
    // every survivor.  The member may transiently be excluded, but with
    // MERGE running it must re-merge: by the end everyone is back in one
    // full view, across seeds, with virtual synchrony intact.
    for seed in 1..=3 {
        let mut w = joined_world(3, seed, NetConfig::reliable(), FD_MERGE_STACK);
        let t = w.now() + Duration::from_millis(20);
        FailureDetector::new().suspect_all(t, &[ep(1), ep(2)], ep(3)).install(&mut w);
        w.run_for(Duration::from_secs(8));
        assert!(w.is_alive(ep(3)), "seed {seed}: ep3 was never actually down");
        for i in 1..=3u64 {
            let v = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(
                v.len(),
                3,
                "seed {seed} ep{i}: falsely suspected member must be re-merged, got {v}"
            );
        }
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty(), "seed {seed}");
    }
}

#[test]
fn false_suspicion_storm_converges() {
    // Chaos scenario: a storm of scripted false suspicions — every member
    // accuses every other member, twice, while application traffic flows.
    // The group may fragment arbitrarily; MERGE must stitch it back into
    // one view and virtual synchrony must hold throughout.
    for seed in [5u64, 6, 7] {
        let mut w = joined_world(4, seed, NetConfig::reliable(), FD_MERGE_STACK);
        let t = w.now();
        let mut fd = FailureDetector::new();
        for round in 0..2u64 {
            for observer in 1..=4u64 {
                for target in 1..=4u64 {
                    if observer != target {
                        fd = fd.suspect(
                            t + Duration::from_millis(40 * round + 3 * observer),
                            ep(observer),
                            ep(target),
                        );
                    }
                }
            }
        }
        assert_eq!(fd.len(), 24);
        fd.install(&mut w);
        for i in 1..=4u64 {
            w.cast_bytes_at(t + Duration::from_millis(10 * i), ep(i), &b"storm"[..]);
        }
        w.run_for(Duration::from_secs(15));
        for i in 1..=4u64 {
            assert!(w.is_alive(ep(i)), "seed {seed}: nobody actually crashed");
            let v = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(v.len(), 4, "seed {seed} ep{i}: storm must heal, got {v}");
        }
        assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty(), "seed {seed}");
    }
}

#[test]
fn coordinator_and_successor_death_mid_flush_converges() {
    // The hardened flush watchdog.  A flush is underway, coordinated by the
    // senior member; the coordinator AND its successor both crash before
    // the cut is frozen.  The old watchdog re-suspected only the original
    // coordinator (a no-op the second time) and unicast SUSPECT reports to
    // the dead successor forever; the escalation now aims at whoever should
    // be coordinating given every known suspicion, so the survivors elect
    // one of themselves.  NAK silence suspicion is disabled (60 s) so the
    // watchdog is the only way out.
    let desc = "MBRSHIP(flush_timeout=100,tick=10):FRAG:NAK(fail_timeout=60000):\
                COM(promiscuous=true)";
    for seed in 1..=3 {
        let mut w = joined_world(5, seed, NetConfig::reliable(), desc);
        let t = w.now();
        // Contributions cannot reach the coordinator: the flush is pinned
        // open for the whole scenario window.
        for from in [ep(3), ep(4)] {
            w.fault_at(
                t,
                FaultRule::BurstLoss {
                    from,
                    to: ep(1),
                    start: t + Duration::from_millis(5),
                    end: t + Duration::from_millis(600),
                },
            );
        }
        // ep5 dies; the scripted detector reports it to the coordinator,
        // which starts a flush reaching every survivor.
        w.crash_at(t + Duration::from_millis(5), ep(5));
        w.suspect_at(t + Duration::from_millis(10), ep(1), ep(5));
        // Both the coordinator (ep1) and its successor (ep2) die mid-flush,
        // after the FLUSH round has gone out but long before the watchdog
        // (2 × 100 ms) would fire.
        w.crash_at(t + Duration::from_millis(30), ep(1));
        w.crash_at(t + Duration::from_millis(30), ep(2));
        w.run_for(Duration::from_secs(6));
        for i in 3..=4u64 {
            let v = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(
                v.members(),
                &[ep(3), ep(4)],
                "seed {seed} ep{i}: survivors must converge past two dead coordinators, got {v}"
            );
        }
        assert!(check_virtual_synchrony(&logs(&w, 5)).is_empty(), "seed {seed}");
    }
}
