//! E16 — §8: reference and production layers are interchangeable and
//! mixable within a stack, equivalent in guarantees, different in cost.

mod common;

use common::*;
use horus::prelude::*;
use horus::sim::Workload;
use horus_layers::reference::NakRef;
use horus_net::NetConfig;
use horus_sim::{check_total_order, check_virtual_synchrony, SimWorld};
use std::time::Duration;

fn flavour(ref_total: bool, ref_nak: bool) -> String {
    format!(
        "{}:MBRSHIP:FRAG:{}:COM(promiscuous=true)",
        if ref_total { "TOTAL_REF" } else { "TOTAL" },
        if ref_nak { "NAK_REF" } else { "NAK" },
    )
}

fn run(desc: &str, seed: u64, loss: f64) -> (SimWorld, Vec<(u64, Vec<u8>)>) {
    let net = if loss > 0.0 { NetConfig::lossy(loss) } else { NetConfig::reliable() };
    let mut w = joined_world(3, seed, net, desc);
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 21);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    w.run_for(Duration::from_secs(5));
    let seq = w.delivered_casts(ep(2)).iter().map(|(s, b, _)| (s.raw(), b.to_vec())).collect();
    (w, seq)
}

#[test]
fn all_four_flavours_meet_the_same_contract() {
    for &(rt, rn) in &[(false, false), (false, true), (true, false), (true, true)] {
        let desc = flavour(rt, rn);
        let (w, seq) = run(&desc, 500, 0.0);
        assert_eq!(seq.len(), 21, "{desc}");
        let logs = logs(&w, 3);
        assert!(check_total_order(&logs).is_empty(), "{desc}");
        assert!(check_virtual_synchrony(&logs).is_empty(), "{desc}");
        // All members identical.
        for i in [1u64, 3] {
            let other: Vec<_> =
                w.delivered_casts(ep(i)).iter().map(|(s, b, _)| (s.raw(), b.to_vec())).collect();
            assert_eq!(seq, other, "{desc} ep{i}");
        }
    }
}

#[test]
fn reference_flavours_survive_loss_and_crashes() {
    for &(rt, rn) in &[(true, true), (true, false), (false, true)] {
        let desc = flavour(rt, rn);
        let mut w = joined_world(3, 600, NetConfig::lossy(0.12), &desc);
        let t = w.now();
        let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 24);
        wl.schedule(&mut w, t + Duration::from_millis(1));
        w.crash_at(t + Duration::from_millis(12), ep(3));
        w.run_for(Duration::from_secs(6));
        let logs = logs(&w, 3);
        assert!(check_total_order(&logs).is_empty(), "{desc}");
        assert!(check_virtual_synchrony(&logs).is_empty(), "{desc}");
    }
}

#[test]
fn reference_fifo_pays_bandwidth_for_simplicity() {
    // Same lossy workload through NAK and NAK_REF: the reference go-back-N
    // design must move measurably more traffic for the same delivery.
    let measure = |desc: &str| -> (u64, usize) {
        let mut w = SimWorld::new(700, NetConfig::lossy(0.15));
        for i in 1..=2 {
            let s = horus::layers::registry::build_stack(
                ep(i),
                desc,
                horus_core::StackConfig::default(),
            )
            .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        for k in 0..40u64 {
            w.cast_bytes_at(SimTime::from_millis(k), ep(1), Workload::body(ep(1), k + 1, 64));
        }
        w.run_for(Duration::from_secs(4));
        (w.net_stats().bytes_sent, w.delivered_casts(ep(2)).len())
    };
    let (prod_bytes, prod_delivered) = measure("NAK:COM");
    let (ref_bytes, ref_delivered) = measure("NAK_REF:COM");
    assert_eq!(prod_delivered, 40);
    assert_eq!(ref_delivered, 40);
    assert!(
        ref_bytes > prod_bytes,
        "go-back-N ({ref_bytes}B) must outspend selective repeat ({prod_bytes}B)"
    );
}

#[test]
fn code_size_gap_echoes_the_paper() {
    // §8: reference layers are "generally an order of magnitude smaller".
    // Ours are roughly 2-3x by line count; assert the direction so the
    // claim stays honest if the sources drift.
    let nak = include_str!("../crates/layers/src/nak.rs");
    let nak_ref_total = include_str!("../crates/layers/src/reference.rs");
    let count = |s: &str| s.lines().filter(|l| !l.trim().is_empty()).count();
    // reference.rs holds TWO layers; halve for a fair comparison.
    assert!(
        count(nak_ref_total) / 2 < count(nak),
        "reference NAK should be smaller than production NAK"
    );
    let _ = NakRef::default(); // keep the import honest
}
