//! Batched dispatch is an optimization, not a semantics change: for every
//! registered layer, feeding an input sequence through
//! [`Stack::handle_batch`] over *any* partition must produce effects
//! byte-identical to feeding the same sequence through `handle` one input
//! at a time.
//!
//! The input sequences mix app casts, real wire frames (stamped by a twin
//! sender stack), and timer expiries harvested from the stack's own
//! `SetTimer` emissions, so every layer's receive, send, and timer paths
//! are crossed.  `Effect` has no `PartialEq`; equality is judged on the
//! `Debug` rendering of the full effect sequence, which covers every field.

use bytes::Bytes;
use horus::layers::registry::{build_stack, layer_names};
use horus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const SEEDS: [u64; 3] = [7, 101, 9001];
const OPS: usize = 40;

fn rx_stack(name: &str, seed: u64) -> Stack {
    let cfg = StackConfig { seed: Some(seed), ..StackConfig::default() };
    let mut s = build_stack(EndpointAddr::new(2), name, cfg)
        .unwrap_or_else(|e| panic!("{name}: stack builds: {e}"));
    let _ = s.init();
    s
}

/// Builds one deterministic input sequence for `name`, using a driver twin
/// to harvest timer tokens as they are set.
fn input_sequence(name: &str, seed: u64) -> Vec<StackInput> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB47C);
    let mut driver = rx_stack(name, seed);
    let mut tx = {
        let cfg = StackConfig { seed: Some(seed), ..StackConfig::default() };
        let mut s = build_stack(EndpointAddr::new(1), name, cfg).unwrap();
        let _ = s.init();
        s
    };
    let mut pending_timers: VecDeque<(usize, u64)> = VecDeque::new();
    let mut inputs: Vec<StackInput> = Vec::with_capacity(OPS + 1);
    inputs.push(StackInput::FromApp(Down::Join { group: GroupAddr::new(1) }));
    for i in 0..OPS {
        let kind = rng.gen_range(0u8..4);
        let input = match kind {
            // A timer the stack actually set, when one is pending.
            0 if !pending_timers.is_empty() => {
                let (layer, token) = pending_timers.pop_front().unwrap();
                StackInput::Timer { layer, token, now: SimTime::from_nanos(i as u64 * 1_000_000) }
            }
            // A real frame off the twin sender's wire.
            1 => {
                let body: Vec<u8> =
                    (0..rng.gen_range(0usize..48)).map(|_| rng.gen_range(0u8..=255)).collect();
                let msg = tx.new_message(Bytes::from(body));
                let fx = tx.handle(StackInput::FromApp(Down::Cast(msg)));
                let wire = fx.iter().find_map(|e| match e {
                    Effect::NetCast { wire } => Some(wire.clone()),
                    Effect::NetSend { wire, .. } => Some(wire.clone()),
                    _ => None,
                });
                match wire {
                    Some(wire) => {
                        StackInput::FromNet { from: EndpointAddr::new(1), cast: true, wire }
                    }
                    // Layer held the cast back — fall through to an app cast.
                    None => {
                        let msg = driver.new_message(Bytes::from(vec![i as u8; 4]));
                        StackInput::FromApp(Down::Cast(msg))
                    }
                }
            }
            // An application cast.
            _ => {
                let body: Vec<u8> =
                    (0..rng.gen_range(0usize..32)).map(|_| rng.gen_range(0u8..=255)).collect();
                let msg = driver.new_message(Bytes::from(body));
                StackInput::FromApp(Down::Cast(msg))
            }
        };
        let fx = driver.handle(input.clone());
        for e in &fx {
            if let Effect::SetTimer { layer, token, .. } = e {
                pending_timers.push_back((*layer, *token));
            }
        }
        inputs.push(input);
    }
    inputs
}

/// Seeded random partition of `0..len` into contiguous chunks of 1..=max.
fn partition(len: usize, max: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut left = len;
    while left > 0 {
        let take = rng.gen_range(1usize..=max.min(left));
        sizes.push(take);
        left -= take;
    }
    sizes
}

#[test]
fn handle_batch_matches_one_at_a_time_for_every_layer() {
    for name in layer_names() {
        for seed in SEEDS {
            let inputs = input_sequence(name, seed);

            // Reference: one input at a time through the Vec shim.
            let mut one = rx_stack(name, seed);
            let mut fx_one: Vec<Effect> = Vec::new();
            for input in &inputs {
                fx_one.extend(one.handle(input.clone()));
            }

            // Candidate: the same inputs, batched over a random partition.
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) ^ 0xD15B);
            let mut batched = rx_stack(name, seed);
            let mut sink = EffectSink::new();
            let mut fx_batched: Vec<Effect> = Vec::new();
            let mut it = inputs.iter();
            for size in partition(inputs.len(), 7, &mut rng) {
                let chunk: Vec<StackInput> = it.by_ref().take(size).cloned().collect();
                batched.handle_batch(chunk, &mut sink);
                fx_batched.extend(sink.drain());
            }

            assert_eq!(
                format!("{fx_one:?}"),
                format!("{fx_batched:?}"),
                "{name} seed {seed}: batched effects diverge from one-at-a-time"
            );
            assert_eq!(
                batched.stats().batched_inputs,
                inputs.len() as u64,
                "{name} seed {seed}: every input accounted to a batch"
            );
            assert_eq!(
                format!("{:?}", one.stats()),
                {
                    // Batch bookkeeping differs by construction; mask it out.
                    let mut s = batched.stats().clone();
                    s.batches = 0;
                    s.batched_inputs = 0;
                    format!("{s:?}")
                },
                "{name} seed {seed}: stack counters diverge"
            );
        }
    }
}

/// The degenerate partitions: everything in one batch, and every batch a
/// singleton, both equal the shim.
#[test]
fn extreme_partitions_agree() {
    for name in ["NAK", "FRAG:NAK:COM", "TOTAL:MBRSHIP:NAK:FLOW:COM"] {
        let inputs = input_sequence(name, 42);
        let mut one = rx_stack(name, 42);
        let mut fx_one: Vec<Effect> = Vec::new();
        for input in &inputs {
            fx_one.extend(one.handle(input.clone()));
        }

        let mut whole = rx_stack(name, 42);
        let mut sink = EffectSink::new();
        whole.handle_batch(inputs.iter().cloned(), &mut sink);
        let fx_whole: Vec<Effect> = sink.drain().collect();

        let mut singles = rx_stack(name, 42);
        let mut fx_singles: Vec<Effect> = Vec::new();
        for input in &inputs {
            singles.handle_batch(std::iter::once(input.clone()), &mut sink);
            fx_singles.extend(sink.drain());
        }

        assert_eq!(format!("{fx_one:?}"), format!("{fx_whole:?}"), "{name}: whole-batch");
        assert_eq!(format!("{fx_one:?}"), format!("{fx_singles:?}"), "{name}: singleton batches");
    }
}
