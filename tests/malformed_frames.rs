//! Malformed-frame robustness: arbitrary and corrupted bytes aimed at the
//! wire codec and at the receive path of **every** registered layer.  The
//! contract everywhere is error-not-panic — a garbage frame is dropped
//! (decode drop, fingerprint drop, or a layer-level discard), never a
//! crash.  This is the §2 claim that layers tolerate whatever the network
//! hands them, tested at the trust boundary.

use bytes::Bytes;
use horus::layers::registry::{build_stack, layer_names};
use horus::prelude::*;
use horus_core::wire::WireReader;
use horus_core::WireFrame;
use proptest::prelude::*;

/// Drives every `WireReader` getter over the buffer until exhaustion;
/// each must return an error (never panic) on truncated or nonsense input.
fn chew(buf: &[u8]) {
    let mut r = WireReader::new(buf);
    loop {
        let before = r.remaining();
        let _ = r.get_u8();
        let _ = r.get_u16();
        let _ = r.get_u32();
        let _ = r.get_u64();
        let _ = r.get_addr();
        let _ = r.get_group();
        let _ = r.get_bytes();
        let _ = r.get_addrs();
        let _ = r.get_u64s();
        let _ = r.get_view();
        if r.remaining() == 0 || r.remaining() == before {
            break;
        }
    }
}

/// One single-layer stack per registered layer name, receiver side.
fn receiver(name: &str) -> Stack {
    let mut s = build_stack(EndpointAddr::new(2), name, StackConfig::default())
        .unwrap_or_else(|e| panic!("{name}: single-layer stack builds: {e}"));
    let _ = s.init();
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The wire codec itself: every getter is total over arbitrary bytes.
    #[test]
    fn wire_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        chew(&bytes);
    }

    /// Arbitrary bytes straight off the network, at every layer: the frame
    /// decoder rejects garbage and nothing below it panics.
    #[test]
    fn every_layer_survives_arbitrary_frames(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        cast in any::<bool>(),
    ) {
        for name in layer_names() {
            let mut s = receiver(name);
            let _ = s.handle(StackInput::FromNet {
                from: EndpointAddr::new(1),
                cast,
                wire: WireFrame::raw(Bytes::from(bytes.clone())),
            });
        }
    }

    /// A validly framed message, then bit-flipped and truncated at random:
    /// whatever survives the fingerprint check reaches the layer's header
    /// parser and body handlers with garbage values — still no panic.
    #[test]
    fn every_layer_survives_mutated_valid_frames(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
        cut in any::<u16>(),
        cast in any::<bool>(),
    ) {
        for name in layer_names() {
            // Sender-side twin stamps a real frame for this layer.
            let mut tx = build_stack(EndpointAddr::new(1), name, StackConfig::default()).unwrap();
            let _ = tx.init();
            let msg = tx.new_message(Bytes::from(body.clone()));
            let fx = tx.handle(StackInput::FromApp(Down::Cast(msg)));
            let Some(wire) = fx.iter().find_map(|e| match e {
                Effect::NetCast { wire } => Some(wire.clone()),
                Effect::NetSend { wire, .. } => Some(wire.clone()),
                _ => None,
            }) else {
                continue; // layer queued or consumed the cast — nothing on the wire
            };
            let mut bytes = wire.to_bytes().to_vec();
            if bytes.is_empty() {
                continue;
            }
            for (pos, val) in &flips {
                let i = *pos as usize % bytes.len();
                bytes[i] ^= *val;
            }
            bytes.truncate(cut as usize % (bytes.len() + 1));
            let mut rx = receiver(name);
            let _ = rx.handle(StackInput::FromNet {
                from: EndpointAddr::new(1),
                cast,
                wire: WireFrame::raw(Bytes::from(bytes)),
            });
        }
    }
}
