//! Determinism guarantees of the executor: one `(seed, script)` pair is
//! exactly one execution, byte for byte — the property that makes
//! Figure 2 replayable and lets proptest shrink failing schedules.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload};
use horus_net::NetConfig;
use std::time::Duration;

/// A full scripted run: group formation, chaos physics, traffic, a crash,
/// a partition cycle.  Returns every observable: upcall kinds with
/// timestamps, delivered bodies, views, stack stats.
fn scripted_run(seed: u64) -> Vec<String> {
    let mut cfg = NetConfig::lossy(0.1);
    cfg.duplicate = 0.05;
    cfg.latency_max = Duration::from_millis(2);
    let mut w = SimWorld::new(seed, cfg);
    for i in 1..=4 {
        let s = build_stack(ep(i), CANONICAL, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=4 {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3), ep(4)], 24);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    w.crash_at(t + Duration::from_millis(11), ep(2));
    w.partition_at(t + Duration::from_millis(400), &[&[ep(1)], &[ep(3), ep(4)]]);
    w.heal_at(t + Duration::from_millis(900));
    w.run_for(Duration::from_secs(6));

    let mut out = Vec::new();
    for i in 1..=4u64 {
        for (at, up) in w.upcalls(ep(i)) {
            let detail = match up {
                Up::Cast { src, msg } => format!("{src}:{:?}", msg.body()),
                Up::View(v) => v.to_string(),
                other => other.kind().to_string(),
            };
            out.push(format!("ep{i} [{at}] {} {detail}", up.kind()));
        }
        out.push(format!("ep{i} stats {:?}", w.stack_stats(ep(i))));
    }
    out.push(format!("net {:?}", w.net_stats()));
    out
}

#[test]
fn identical_seed_identical_execution() {
    let a = scripted_run(20260707);
    let b = scripted_run(20260707);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_diverge() {
    // Different RNG → different loss pattern → observably different runs
    // (sanity check that the seed actually matters).
    let a = scripted_run(1);
    let b = scripted_run(2);
    assert_ne!(a, b);
}
