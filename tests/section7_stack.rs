//! E3 — §7's worked example, verified twice over: once in the property
//! algebra (the derivation matches the paper's stated set exactly) and
//! once operationally (the very stack the paper names exhibits each
//! derived property in execution).

mod common;

use common::*;
use horus::props::{derive_stack, Prop, PropSet};
use horus::sim::Workload;
use horus_net::NetConfig;
use horus_props::check::section7;
use horus_sim::{check_fifo, check_total_order, check_virtual_synchrony};
use std::time::Duration;

#[test]
fn derivation_matches_paper_exactly() {
    let (stack, network, expected) = section7();
    let got = derive_stack(stack, network).expect("well-formed");
    assert_eq!(got, expected);
    // Spot-check the paper's enumeration: P3, P4, P6, P8, P9, P10, P11,
    // P12, P15 — and nothing else.
    let shouldnt = [
        Prop::BestEffort,
        Prop::Prioritized,
        Prop::Causal,
        Prop::Safe,
        Prop::CausalTimestamps,
        Prop::Stability,
        Prop::AutoMerge,
    ];
    for p in shouldnt {
        assert!(!got.contains(p), "{p} must not be derived");
    }
}

#[test]
fn every_permutation_of_the_canonical_layers_is_checked() {
    // Of the 120 orderings of {TOTAL, MBRSHIP, FRAG, NAK, COM}, exactly
    // one is well-formed over a P1 network: the paper's.
    let layers = ["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"];
    let p1 = PropSet::of(&[Prop::BestEffort]);
    let mut well_formed = Vec::new();
    let mut perm = layers;
    // Heap's algorithm, iterative.
    let mut c = [0usize; 5];
    if derive_stack(&perm, p1).is_ok() {
        well_formed.push(perm);
    }
    let mut i = 0;
    while i < 5 {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if derive_stack(&perm, p1).is_ok() {
                well_formed.push(perm);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    assert_eq!(
        well_formed,
        vec![["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"]],
        "only the paper's ordering may type-check"
    );
}

#[test]
fn the_derived_properties_hold_operationally() {
    // Run the actual stack and demonstrate the headline properties:
    // FIFO (P3/P4), total order (P6), virtual synchrony (P8/P9/P15),
    // large messages (P12) — under loss, with a crash.
    let mut w = joined_world(3, 77, NetConfig::lossy(0.1), CANONICAL);
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 30);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    // P12: a body far beyond the 1500-byte MTU.
    let big: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
    w.cast_bytes_at(t + Duration::from_millis(3), ep(2), big.clone());
    w.crash_at(t + Duration::from_millis(25), ep(3));
    w.run_for(Duration::from_secs(5));

    let logs = logs(&w, 3);
    assert!(check_virtual_synchrony(&logs).is_empty(), "P8/P9/P15");
    assert!(check_total_order(&logs).is_empty(), "P6");
    assert!(check_fifo(&logs, Workload::parse).is_empty(), "P3/P4");
    // P12: the large message arrived intact at the survivors.
    for i in 1..=2 {
        assert!(
            w.delivered_casts(ep(i)).iter().any(|(_, b, _)| b[..] == big[..]),
            "ep{i} delivered the 20 KB message"
        );
    }
    // P11 source addresses: every delivery names its sender.
    for (src, _, _) in w.delivered_casts(ep(1)) {
        assert!(!src.is_null());
    }
}
