//! The §11 socket embedding over the *full* membership stack, in real
//! time on the threaded executor: views form, totally ordered traffic
//! flows, a member leaves — all behind `sendto`/`recvfrom`.

use horus::socket::GroupSocket;
use horus_core::{EndpointAddr, GroupAddr, Up};
use horus_net::LoopbackNet;
use std::time::Duration;

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

const STACK: &str = "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";

#[test]
fn sockets_form_a_virtually_synchronous_group() {
    let net = LoopbackNet::new();
    let g = GroupAddr::new(1);
    let mut socks: Vec<GroupSocket> =
        (1..=3).map(|i| GroupSocket::bind(&net, ep(i), STACK).unwrap()).collect();
    for s in &socks {
        s.join(g);
    }
    // Merge the group behind the scenes.
    std::thread::sleep(Duration::from_millis(30));
    socks[1].merge(ep(1));
    for s in &mut socks[..2] {
        assert!(s.wait_for_view(2, Duration::from_secs(10)).is_some(), "2-member view forms");
    }
    socks[2].merge(ep(1));
    for s in &mut socks {
        let v = s
            .wait_for_view(3, Duration::from_secs(10))
            .expect("full view forms through the socket API");
        assert_eq!(v.len(), 3);
    }

    // Concurrent sendto from two members: every socket receives both, in
    // the same (total) order.
    socks[0].sendto(&b"from one"[..]);
    socks[2].sendto(&b"from three"[..]);
    let mut orders = Vec::new();
    for (i, s) in socks.iter_mut().enumerate() {
        let a = s.recvfrom(Duration::from_secs(10)).unwrap_or_else(|| panic!("socket {i} #1"));
        let b = s.recvfrom(Duration::from_secs(10)).unwrap_or_else(|| panic!("socket {i} #2"));
        orders.push(vec![a, b]);
    }
    assert_eq!(orders[0], orders[1], "total order across sockets");
    assert_eq!(orders[0], orders[2]);

    // One member leaves; the others observe the LEAVE and the shrunk view.
    let leaver = socks.pop().expect("three sockets");
    leaver.close();
    for s in &mut socks {
        let v = s.wait_for_view(0, Duration::from_secs(10)).expect("views keep flowing");
        // Wait specifically for the 2-member view.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut v = v;
        while v.len() != 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            if let Some(nv) = s.current_view() {
                v = nv;
            }
        }
        assert_eq!(v.len(), 2, "view shrank after the leave");
        assert!(s
            .take_events()
            .iter()
            .any(|u| matches!(u, Up::Leave { member } if *member == ep(3))));
    }
    for s in socks {
        s.close();
    }
}
