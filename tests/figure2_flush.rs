//! E5 — Figure 2, the flush protocol scenario, on both membership
//! implementations (production MBRSHIP and the BMS/VSS/FLUSH reference
//! decomposition) and across a matrix of loss rates and header modes.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use horus_sim::check_virtual_synchrony;
use std::time::Duration;

const DECOMPOSED: &str = "FLUSH:VSS:BMS:FRAG:NAK:COM(promiscuous=true)";

/// Runs the Figure 2 script: D, partitioned together with C, casts M and
/// crashes; the flush must deliver M at A and B exactly once, recovered.
fn figure2(stack: &str, seed: u64, net: NetConfig, mode: HeaderMode) {
    let (a, b, c, d) = (ep(1), ep(2), ep(3), ep(4));
    let config = StackConfig { mode, ..StackConfig::default() };
    let mut w = SimWorld::new(seed, net);
    for &e in &[a, b, c, d] {
        let s = build_stack(e, stack, config.clone()).unwrap();
        w.add_endpoint(s);
        w.join(e, group());
    }
    for &e in &[b, c, d] {
        w.down(e, Down::Merge { contact: a });
    }
    w.run_for(Duration::from_secs(3));
    assert_eq!(w.installed_views(a).last().unwrap().len(), 4, "{stack} seed {seed}: formed");

    let t = w.now();
    w.partition_at(t + Duration::from_millis(1), &[&[a, b], &[c, d]]);
    w.cast_bytes_at(t + Duration::from_millis(2), d, &b"M"[..]);
    w.crash_at(t + Duration::from_millis(5), d);
    w.heal_at(t + Duration::from_millis(8));
    w.run_for(Duration::from_secs(4));

    for &m in &[a, b, c] {
        let from_d: Vec<bool> = w
            .upcalls(m)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Cast { src, msg } if *src == d => Some(msg.meta.flush_recovered),
                _ => None,
            })
            .collect();
        assert_eq!(from_d.len(), 1, "{stack} seed {seed}: {m} delivers M exactly once");
        if m == a || m == b {
            assert!(from_d[0], "{stack} seed {seed}: {m} can only have gotten M through the flush");
        }
    }
    let survivors_view = w.installed_views(a).last().unwrap().clone();
    assert_eq!(survivors_view.members(), &[a, b, c], "{stack} seed {seed}: final view");
    let logs = logs(&w, 4);
    let violations = check_virtual_synchrony(&logs);
    assert!(violations.is_empty(), "{stack} seed {seed}: {violations:?}");
}

#[test]
fn figure2_production_membership() {
    for seed in 1..=5 {
        figure2(VSYNC, seed, NetConfig::reliable(), HeaderMode::Compact);
    }
}

#[test]
fn figure2_under_loss() {
    for seed in 1..=3 {
        figure2(VSYNC, 40 + seed, NetConfig::lossy(0.1), HeaderMode::Compact);
    }
}

#[test]
fn figure2_aligned_headers() {
    figure2(VSYNC, 9, NetConfig::reliable(), HeaderMode::Aligned);
}

#[test]
fn figure2_decomposed_membership() {
    for seed in 1..=3 {
        figure2(DECOMPOSED, 60 + seed, NetConfig::reliable(), HeaderMode::Compact);
    }
}

#[test]
fn coordinator_crash_cascades_to_next_oldest() {
    // Crash D (triggering a flush led by A, the oldest), then crash A
    // mid-flush: B takes over as "oldest surviving member of the oldest
    // view" and the system still converges.
    let (a, b, c, d) = (ep(1), ep(2), ep(3), ep(4));
    let mut w = SimWorld::new(13, NetConfig::reliable());
    for &e in &[a, b, c, d] {
        let s = build_stack(e, VSYNC, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(e, group());
    }
    for &e in &[b, c, d] {
        w.down(e, Down::Merge { contact: a });
    }
    w.run_for(Duration::from_secs(2));
    let t = w.now();
    w.crash_at(t + Duration::from_millis(5), d);
    w.crash_at(t + Duration::from_millis(150), a);
    w.run_for(Duration::from_secs(5));
    for &m in &[b, c] {
        let v = w.installed_views(m).last().unwrap().clone();
        assert_eq!(v.members(), &[b, c], "{m}");
        assert_eq!(v.id().coordinator, b, "B led the final flush");
    }
    assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
}
