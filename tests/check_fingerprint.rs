//! Differential and determinism tests for the incremental fingerprints and
//! the parallel explorer.
//!
//! The incremental fingerprint (`SimWorld::fingerprint`) exists purely as a
//! performance optimization over the from-scratch walk
//! (`SimWorld::fingerprint_fresh`) — the two must be *bit-identical* at
//! every observable instant, or visited-state pruning silently changes the
//! explored space.  These tests drive every registered scenario and every
//! committed fixture through both paths and compare.
//!
//! The parallel explorer's contract is worker-count independence: the same
//! scenario and config must produce the same exhaustion verdict and the
//! same minimized counterexample whether explored with 1 worker or 4.

use horus_check::schedule::verdict_line;
use horus_check::{explore_parallel, replay_choices, shrink, CheckConfig, Scenario, Schedule};
use horus_sim::{ReadyEvent, Scheduler, SimWorld, Step};
use std::time::Duration;

/// A scheduler that follows calendar order while asserting, at every single
/// step, that the cached fingerprint matches a fresh recomputation.
struct DiffScheduler {
    steps: u64,
}

impl Scheduler for DiffScheduler {
    fn next_step(&mut self, world: &SimWorld, _ready: &[ReadyEvent]) -> Step {
        assert_eq!(
            world.fingerprint(),
            world.fingerprint_fresh(),
            "incremental fingerprint diverged from fresh recomputation at step {}",
            self.steps
        );
        self.steps += 1;
        Step::Fire(0)
    }
}

#[test]
fn incremental_fingerprint_matches_fresh_on_every_scenario() {
    // Calendar-order drive of every registered scenario, checking the
    // differential at each step.  This exercises the full mutation surface
    // the scenarios reach: dispatch into stacks, timer churn, membership
    // changes, partitions, heals, crashes, and suspicions.
    for scenario in Scenario::all() {
        let mut w = scenario.build();
        let mut sched = DiffScheduler { steps: 0 };
        w.run_scheduled(&mut sched, Duration::ZERO, scenario.deadline());
        assert!(sched.steps > 0, "scenario {} executed no steps", scenario.name);
        assert_eq!(
            w.fingerprint(),
            w.fingerprint_fresh(),
            "divergence at the deadline of scenario {}",
            scenario.name
        );
    }
}

fn fixtures() -> Vec<(String, Schedule)> {
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("check") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let schedule = Schedule::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"));
        out.push((name, schedule));
    }
    assert!(out.len() >= 4, "fixture corpus unexpectedly small: {}", out.len());
    out
}

#[test]
fn fixtures_replay_identically_under_incremental_and_fresh_fingerprints() {
    // Every committed fixture, replayed twice: once with the incremental
    // fingerprint (the default) and once forcing the from-scratch walk.
    // Both the verdict and the taken-choice trace must agree — fingerprints
    // feed visited-set pruning, and pruning must not depend on which
    // implementation computed the hash.  (In debug builds the replay itself
    // also asserts cached == fresh at every branch point.)
    for (name, schedule) in fixtures() {
        let scenario = Scenario::by_name(&schedule.scenario)
            .unwrap_or_else(|| panic!("{name}: unknown scenario {:?}", schedule.scenario));
        let incremental = schedule.to_config();
        let fresh = CheckConfig { incremental_fp: false, ..schedule.to_config() };
        let ri = replay_choices(scenario, &schedule.choices, &incremental);
        let rf = replay_choices(scenario, &schedule.choices, &fresh);
        assert_eq!(verdict_line(&ri), verdict_line(&rf), "{name}: verdict differs");
        assert_eq!(ri.taken, rf.taken, "{name}: taken trace differs");
        assert_eq!(verdict_line(&ri), schedule.verdict, "{name}: verdict drift");
    }
}

#[test]
fn parallel_exploration_is_worker_count_independent_end_to_end() {
    // fifo2 holds a real violation the explorer must find.  Worker count
    // must not change what is found: same stats, same violation, and — the
    // part users actually consume — the same *minimized* schedule file after
    // shrinking, replaying to the same verdict.
    let scenario = Scenario::by_name("fifo2").unwrap();
    let cfg =
        CheckConfig { max_depth: 6, window: Duration::from_micros(100), ..CheckConfig::default() };
    let one = explore_parallel(scenario, &cfg, 1);
    let four = explore_parallel(scenario, &cfg, 4);

    assert_eq!(one.exhausted, four.exhausted);
    assert_eq!(one.runs, four.runs, "run counts differ across worker counts");
    assert_eq!(one.states, four.states, "state counts differ across worker counts");
    let v1 = one.violation.expect("fifo2 violation with 1 worker");
    let v4 = four.violation.expect("fifo2 violation with 4 workers");
    assert_eq!(v1.oracle, v4.oracle);
    assert_eq!(v1.choices, v4.choices, "counterexample prefix differs");

    let s1 = shrink(scenario, &cfg, v1.oracle, &v1.choices);
    let s4 = shrink(scenario, &cfg, v4.oracle, &v4.choices);
    assert_eq!(s1, s4, "minimized counterexamples differ");
    let r1 = replay_choices(scenario, &s1, &cfg);
    let r4 = replay_choices(scenario, &s4, &cfg);
    assert_eq!(verdict_line(&r1), verdict_line(&r4));
    assert!(r1.violation.is_some(), "shrunk schedule must still violate");
}
