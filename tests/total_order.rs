//! E7 — TOTAL's safety and liveness (§7): identical delivery order at all
//! survivors; token loss at a crash recovers deterministically through the
//! view change; no failure detector inside TOTAL itself.

mod common;

use common::*;
use horus::sim::{Workload, WorkloadKind};
use horus_net::NetConfig;
use horus_sim::{check_total_order, check_virtual_synchrony};
use proptest::prelude::*;
use std::time::Duration;

fn run_total(seed: u64, n: u64, loss_pct: u8, crash_rank0: bool, slots: u64) {
    let net = if loss_pct == 0 {
        NetConfig::reliable()
    } else {
        NetConfig::lossy(loss_pct as f64 / 100.0)
    };
    let mut w = joined_world(n, seed, net, CANONICAL);
    let t = w.now();
    let wl = Workload {
        kind: WorkloadKind::AllToAll,
        senders: (1..=n).map(ep).collect(),
        slots,
        interval: Duration::from_micros(700),
        payload: 24,
    };
    let total = wl.schedule(&mut w, t + Duration::from_millis(1));
    if crash_rank0 {
        // ep1 is the most senior member and the first token holder.
        w.crash_at(t + Duration::from_millis(8), ep(1));
    }
    w.run_for(Duration::from_secs(6));
    let logs = logs(&w, n);
    let v1 = check_total_order(&logs);
    assert!(v1.is_empty(), "seed {seed}: {v1:?}");
    let v2 = check_virtual_synchrony(&logs);
    assert!(v2.is_empty(), "seed {seed}: {v2:?}");
    if !crash_rank0 {
        // Without failures, everyone delivers every message.
        for i in 1..=n {
            assert_eq!(w.delivered_casts(ep(i)).len() as u64, total, "seed {seed} ep{i}");
        }
    } else {
        // Liveness after the token holder died: survivors deliver
        // everything the surviving senders sent after the new view, too.
        let survivors: Vec<_> = (2..=n).collect();
        let reference = w.delivered_casts(ep(survivors[0])).len();
        assert!(reference > 0, "seed {seed}: survivors made progress");
        for &i in &survivors[1..] {
            assert_eq!(w.delivered_casts(ep(i)).len(), reference, "seed {seed} ep{i}");
        }
    }
}

#[test]
fn no_failure_all_delivered_in_one_order() {
    for seed in 1..=4 {
        run_total(seed, 3, 0, false, 25);
    }
}

#[test]
fn loss_does_not_perturb_the_order() {
    for seed in 1..=3 {
        run_total(100 + seed, 3, 15, false, 20);
    }
}

#[test]
fn token_holder_crash_is_survivable() {
    for seed in 1..=4 {
        run_total(200 + seed, 4, 0, true, 30);
    }
}

#[test]
fn token_holder_crash_under_loss() {
    for seed in 1..=2 {
        run_total(300 + seed, 3, 10, true, 20);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn total_order_random(
        seed in 0u64..10_000,
        n in 2u64..=4,
        loss in prop_oneof![Just(0u8), Just(8u8)],
        crash in proptest::bool::ANY,
        slots in 5u64..25,
    ) {
        // Crashing the only other member of a 2-group leaves a singleton,
        // which is fine; the checks still apply.
        run_total(seed, n, loss, crash && n > 2, slots);
    }
}
