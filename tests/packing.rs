//! PACK — the message-packing accelerator, end to end.
//!
//! Four angles on §10's "combining of several small messages into a
//! single large one":
//!
//! 1. **Differential correctness**: a packed stack must be observationally
//!    identical to the plain stack under 10% loss — same bodies, same
//!    order, nothing dropped, nothing duplicated (property test).
//! 2. **Latency bound**: a queued message leaves within the configured
//!    flush delay, measured in virtual time.
//! 3. **Zero-copy discipline**: the payload `Bytes` handed to the
//!    application downcall is the very storage the transport sees, with
//!    `payload_copies == 0` on the plain hot path.
//! 4. **Throughput smoke test**: the packed hot path moves small messages
//!    at a multiple of the unpacked rate (full run: `packing_throughput`
//!    bench); results land in `BENCH_packing.json`.

mod common;

use bytes::Bytes;
use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use proptest::prelude::*;
use std::time::Duration;

const PACKED: &str = "PACK:NAK:COM";
const PLAIN: &str = "NAK:COM";

/// Deterministic per-message body: message `k` of size `n`.
fn pattern(k: usize, n: usize) -> Vec<u8> {
    (0..n).map(|i| (k as u8).wrapping_mul(31).wrapping_add(i as u8)).collect()
}

/// Runs a 2-member world of `desc` stacks over `net`, casts one message
/// per entry of `sizes` from ep(1), and returns the bodies ep(2) saw.
fn deliveries(desc: &str, seed: u64, net: NetConfig, sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut w = SimWorld::new(seed, net);
    for i in 1..=2 {
        let s = build_stack(ep(i), desc, StackConfig::default()).expect("stack builds");
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for (k, &n) in sizes.iter().enumerate() {
        w.cast_bytes(ep(1), pattern(k, n));
    }
    w.run_for(Duration::from_secs(3));
    w.delivered_casts(ep(2)).iter().map(|(_, b, _)| b.to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Packing is invisible: under 10% loss, the packed stack delivers
    /// exactly what the plain stack delivers — every message, in FIFO
    /// order, bit-for-bit.
    #[test]
    fn packed_stack_is_observationally_plain_under_loss(
        seed in 1u64..500,
        sizes in proptest::collection::vec(1usize..180, 1..25),
    ) {
        let packed = deliveries(PACKED, seed, NetConfig::lossy(0.1), &sizes);
        let plain = deliveries(PLAIN, seed, NetConfig::lossy(0.1), &sizes);
        let expected: Vec<Vec<u8>> =
            sizes.iter().enumerate().map(|(k, &n)| pattern(k, n)).collect();
        prop_assert_eq!(&packed, &expected, "packed stack must deliver all, in order");
        prop_assert_eq!(&packed, &plain, "packing must be observationally invisible");
    }
}

#[test]
fn flush_timer_bounds_latency_in_virtual_time() {
    let mut w = SimWorld::new(7, NetConfig::reliable());
    for i in 1..=2 {
        let s = build_stack(ep(i), "PACK(delay=5):NAK:COM", StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    w.cast_bytes(ep(1), b"pending".to_vec());
    // Before the 5 ms flush delay the message sits in PACK's queue...
    w.run_for(Duration::from_millis(4));
    assert!(w.delivered_casts(ep(2)).is_empty(), "must still be queued at 4 ms");
    // ...and must be out within the delay plus transit.
    w.run_for(Duration::from_millis(6));
    let got = w.delivered_casts(ep(2));
    assert_eq!(got.len(), 1);
    assert_eq!(&got[0].1[..], b"pending");
    let at = got[0].2;
    assert!(at >= SimTime::from_millis(5), "cannot beat the flush timer: {at:?}");
    assert!(at <= SimTime::from_millis(8), "flush delay must bound latency: {at:?}");
}

/// Builds a lone stack, initialised and joined, for direct pumping.
fn pump_stack(i: u64, desc: &str) -> Stack {
    let mut s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
    let _ = s.init();
    let _ = s.handle(StackInput::FromApp(Down::Join { group: group() }));
    s
}

#[test]
fn payload_reaches_transport_and_peer_without_copying() {
    let mut tx = pump_stack(1, "FRAG:NAK:COM");
    let mut rx = pump_stack(2, "FRAG:NAK:COM");
    let payload = Bytes::from(vec![0x5A; 512]);
    let msg = tx.new_message(payload.clone());
    let fx = tx.handle(StackInput::FromApp(Down::Cast(msg)));
    let wire = fx
        .iter()
        .find_map(|e| match e {
            Effect::NetCast { wire } => Some(wire.clone()),
            _ => None,
        })
        .expect("cast reaches the wire");
    assert_eq!(
        wire.body().as_ptr(),
        payload.as_ptr(),
        "transport body must share the app payload's storage"
    );
    assert_eq!(tx.stats().payload_copies, 0, "no copies on the send path");
    let fx = rx.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
    let delivered = fx
        .iter()
        .find_map(|e| match e {
            Effect::Deliver(Up::Cast { msg, .. }) => Some(msg.body().clone()),
            _ => None,
        })
        .expect("cast delivered");
    assert_eq!(
        delivered.as_ptr(),
        payload.as_ptr(),
        "delivered body must share the app payload's storage"
    );
    assert_eq!(rx.stats().payload_copies, 0, "no copies on the receive path");
}

/// Pumps `iters` bursts of `burst` casts of `body_len` bytes through a
/// tx/rx stack pair, returning (msgs_per_sec, wire_frames).
fn pump_throughput(desc: &str, body_len: usize, burst: usize, iters: usize) -> (f64, u64) {
    let mut tx = pump_stack(1, desc);
    let mut rx = pump_stack(2, desc);
    let body = vec![0x42u8; body_len];
    let mut frames = 0u64;
    let mut delivered = 0usize;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        for _ in 0..burst {
            let msg = tx.new_message(body.clone());
            for e in tx.handle(StackInput::FromApp(Down::Cast(msg))) {
                if let Effect::NetCast { wire } = e {
                    frames += 1;
                    delivered += rx
                        .handle(StackInput::FromNet { from: ep(1), cast: true, wire })
                        .iter()
                        .filter(|e| matches!(e, Effect::Deliver(Up::Cast { .. })))
                        .count();
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(delivered, iters * burst, "{desc}: every cast must be delivered");
    ((iters * burst) as f64 / secs, frames)
}

#[test]
fn packing_throughput_smoke() {
    const BODY: usize = 64;
    const BURST: usize = 32;
    const ITERS: usize = 500;
    // Thresholds chosen so only the count threshold fires: the flush is
    // synchronous on the last cast of each burst, no timer needed.
    let packed_desc = "PACK(msgs=32,bytes=1000000,delay=1000):NAK:COM";
    // Warm-up (allocator, lazy init), then take the best of three trials
    // per configuration — peak rates are what the scheduler can't steal.
    let _ = pump_throughput(PLAIN, BODY, BURST, 50);
    let _ = pump_throughput(packed_desc, BODY, BURST, 50);
    let best = |desc: &str| -> (f64, u64) {
        (0..3)
            .map(|_| pump_throughput(desc, BODY, BURST, ITERS))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("three trials")
    };
    let (plain_rate, plain_frames) = best(PLAIN);
    let (packed_rate, packed_frames) = best(packed_desc);
    let speedup = packed_rate / plain_rate;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"packing_throughput_smoke\",\n",
            "  \"payload_bytes\": {},\n",
            "  \"burst\": {},\n",
            "  \"msgs\": {},\n",
            "  \"unpacked\": {{ \"msgs_per_sec\": {:.0}, \"wire_frames\": {} }},\n",
            "  \"packed\": {{ \"msgs_per_sec\": {:.0}, \"wire_frames\": {} }},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        BODY,
        BURST,
        BURST * ITERS,
        plain_rate,
        plain_frames,
        packed_rate,
        packed_frames,
        speedup
    );
    std::fs::write(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_packing.json"), &json)
        .expect("write BENCH_packing.json");
    eprintln!("{json}");
    assert_eq!(plain_frames as usize, BURST * ITERS, "plain: one frame per message");
    assert_eq!(packed_frames as usize, ITERS, "packed: one frame per burst");
    assert!(
        speedup >= 2.0,
        "packing must at least double small-message throughput, got {speedup:.2}x \
         ({packed_rate:.0} vs {plain_rate:.0} msgs/s)"
    );
}
