//! Stored-counterexample regression corpus.
//!
//! Every `tests/fixtures/*.check` file is a schedule the checker once
//! produced (or a hand-pinned clean schedule worth guarding): scenario,
//! bounds, choice list, and the verdict that run must keep producing.
//! Replaying them here makes schedule semantics part of the public contract
//! — a refactor that changes option enumeration, fingerprinting windows, or
//! layer behavior under reordering shows up as verdict drift in review, not
//! as a silent loss of coverage.

use horus_check::schedule::verdict_line;
use horus_check::{replay_choices, Scenario, Schedule};

fn fixture(name: &str) -> Schedule {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Schedule::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn replay(schedule: &Schedule) -> String {
    let scenario = Scenario::by_name(&schedule.scenario)
        .unwrap_or_else(|| panic!("fixture references unknown scenario {:?}", schedule.scenario));
    let cfg = schedule.to_config();
    verdict_line(&replay_choices(scenario, &schedule.choices, &cfg))
}

#[test]
fn all_fixtures_replay_to_their_recorded_verdicts() {
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("check") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let schedule = fixture(&name);
        let verdict = replay(&schedule);
        assert_eq!(verdict, schedule.verdict, "verdict drift in fixture {name}");
    }
    assert!(seen >= 4, "fixture corpus went missing (found {seen} files)");
}

#[test]
fn replays_are_byte_stable_across_repetition() {
    let schedule = fixture("fifo2_fifo.check");
    let first = replay(&schedule);
    for _ in 0..3 {
        assert_eq!(replay(&schedule), first);
    }
}

#[test]
fn fifo_counterexample_is_a_real_violation() {
    let schedule = fixture("fifo2_fifo.check");
    assert!(
        schedule.verdict.starts_with("violation fifo:"),
        "fixture must pin a FIFO violation, got {:?}",
        schedule.verdict
    );
    assert_eq!(replay(&schedule), schedule.verdict);
}

#[test]
fn wedge_reconstruction_stays_wedged_and_clean() {
    // The view-merge wedge neighborhood: a false suspicion against the
    // coordinator wedges the group into {a} / {b, c}.  The suspicion is no
    // longer scripted — the fixture carries a `max_suspects: 1` budget and
    // its first choice (index 11: past the nine unfiltered fire options,
    // into the suspect block at ordered pair (ep:2, ep:1)) injects it.  No
    // invariant is violated — the members agree within their components —
    // and this fixture pins both the budget semantics and the verdict.
    let schedule = fixture("wedge_clean.check");
    assert_eq!(schedule.verdict, "clean");
    assert_eq!(schedule.to_config().max_suspects, 1, "fixture must carry the suspect budget");
    assert_eq!(replay(&schedule), "clean");

    // Pin the option layout the choice index depends on: 9 fires + 6
    // ordered suspect pairs at the first branch point.  An enumeration
    // change that silently moves the suspect block would otherwise keep
    // replaying clean while injecting nothing.
    {
        let scenario = Scenario::by_name("wedge").unwrap();
        let rec = replay_choices(scenario, &schedule.choices, &schedule.to_config());
        assert_eq!(rec.branch_options.first(), Some(&15), "wedge first-branch option count moved");
        assert_eq!(
            rec.taken.first(),
            Some(&11),
            "fixture choice must land on suspect (ep:2, ep:1)"
        );
    }

    // The wedged *shape* is reconstructed here with the same suspicion the
    // explorer injects, placed calendar-style just after the merge nudge.
    use horus_core::prelude::EndpointAddr;
    let scenario = Scenario::by_name("wedge").unwrap();
    let mut w = scenario.build();
    let base = horus_core::prelude::SimTime::ZERO + scenario.settle;
    w.suspect_at(
        base + std::time::Duration::from_millis(2),
        EndpointAddr::new(2),
        EndpointAddr::new(1),
    );
    let mut cal = horus_sim::CalendarScheduler;
    w.run_scheduled(&mut cal, std::time::Duration::ZERO, scenario.deadline());
    let views: Vec<usize> = (1..=3)
        .map(|i| w.installed_views(EndpointAddr::new(i)).last().map(|v| v.len()).unwrap_or(0))
        .collect();
    assert_eq!(views, vec![1, 2, 2], "the false suspicion must wedge the group into 1+2");
}

#[test]
fn unordered_counterexample_needs_no_choices() {
    // The planted total-order bug fires even on the calendar-order schedule;
    // the shrinker reduced the counterexample to the empty choice list.
    let schedule = fixture("unordered_total.check");
    assert!(schedule.choices.is_empty());
    assert!(schedule.verdict.starts_with("violation total-order:"));
    assert_eq!(replay(&schedule), schedule.verdict);
}
