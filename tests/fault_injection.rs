//! The targeted fault-plan engine, end to end: every rule type leaves its
//! fingerprint in the dedicated `NetStats` counter exactly when installed
//! (and never otherwise), composes with the global chaos physics, and —
//! because rules are part of the scripted schedule — a `(seed, script)`
//! pair replays byte-identically, faults and all.

mod common;

use common::*;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload};
use horus_net::{FaultRule, NetConfig};
use horus_sim::check_virtual_synchrony;
use std::time::Duration;

/// A joined world plus steady all-to-all traffic so every directed link
/// carries frames during the fault window.
fn busy_world(n: u64, seed: u64, net: NetConfig) -> SimWorld {
    let mut w = joined_world(n, seed, net, VSYNC);
    let t = w.now();
    let wl = Workload::round_robin((1..=n).map(ep).collect(), 30);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    w
}

fn rules() -> Vec<(&'static str, FaultRule)> {
    let start = SimTime::from_millis(3050);
    vec![
        ("directed", FaultRule::DirectedLoss { from: ep(1), to: ep(2), rate: 0.5 }),
        ("cut", FaultRule::OneWayCut { from: ep(2), to: ep(1), start, end: None }),
        (
            "burst",
            FaultRule::BurstLoss {
                from: ep(1),
                to: ep(3),
                start,
                end: start + Duration::from_millis(400),
            },
        ),
        ("corrupt", FaultRule::TargetedCorrupt { src: ep(3), every_nth: 2 }),
    ]
}

fn counter(stats: &horus_net::NetStats, which: &str) -> u64 {
    match which {
        "directed" => stats.dropped_directed,
        "cut" => stats.dropped_cut,
        "burst" => stats.dropped_burst,
        "corrupt" => stats.corrupted_targeted,
        _ => unreachable!(),
    }
}

#[test]
fn each_rule_type_bumps_only_its_counter_when_installed() {
    for (name, rule) in rules() {
        let mut w = busy_world(3, 11, NetConfig::reliable());
        let t = w.now();
        w.fault_at(t + Duration::from_millis(5), rule);
        w.run_for(Duration::from_secs(2));
        let stats = w.net_stats();
        assert!(
            counter(stats, name) > 0,
            "{name}: dedicated counter must be nonzero after injection, stats {stats:?}"
        );
        for (other, _) in rules() {
            if other != name {
                assert_eq!(
                    counter(stats, other),
                    0,
                    "{name}: counter for {other} must stay zero, stats {stats:?}"
                );
            }
        }
        // Per-rule hit accounting matches the aggregate counter.
        let hits = w.net_mut().fault_hits();
        assert!(hits[0] > 0, "{name}: rule hit count");
    }
}

#[test]
fn without_rules_every_targeted_counter_stays_zero() {
    // Same world, same seed, same traffic — an empty fault plan draws
    // nothing from the RNG and touches no counter.
    let mut w = busy_world(3, 11, NetConfig::reliable());
    w.run_for(Duration::from_secs(2));
    let stats = w.net_stats();
    for (name, _) in rules() {
        assert_eq!(counter(stats, name), 0, "no faults installed, stats {stats:?}");
    }
}

#[test]
fn asymmetric_link_partition_heals() {
    // Chaos scenario: a one-way cut makes ep3 mute toward ep1 and ep2 (it
    // can hear but not speak — the classic half-open failure).  Both sides
    // converge on excluding / being excluded, and once the cut lifts MERGE
    // stitches the group back together.  VS must hold throughout.
    let desc = "MERGE(contacts=1,period=60):MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
    for seed in 1..=3 {
        let mut w = joined_world(3, seed, NetConfig::reliable(), desc);
        let t = w.now();
        let end = t + Duration::from_millis(900);
        for to in [ep(1), ep(2)] {
            w.fault_at(
                t,
                FaultRule::OneWayCut {
                    from: ep(3),
                    to,
                    start: t + Duration::from_millis(10),
                    end: Some(end),
                },
            );
        }
        w.run_for(Duration::from_millis(800));
        // Mid-cut: the speaking side has excluded the mute member.
        assert_eq!(
            w.installed_views(ep(1)).last().unwrap().members(),
            &[ep(1), ep(2)],
            "seed {seed}: half-open member excluded"
        );
        w.run_for(Duration::from_secs(12));
        for i in 1..=3u64 {
            let v = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(v.len(), 3, "seed {seed} ep{i}: asymmetric partition heals, got {v}");
        }
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty(), "seed {seed}");
        assert!(w.net_stats().dropped_cut > 0, "seed {seed}: the cut must have bitten");
    }
}

#[test]
fn flaky_member_flaps_and_rejoins_under_faults() {
    // Chaos scenario: a flaky member — its link dies in bursts, long
    // enough to be excluded each time, then comes back.  Across repeated
    // flaps the member must always be re-merged (never permanently
    // ejected), while a targeted corruption rule garbles every third frame
    // a survivor sends.  Corrupted frames must be treated as loss (never
    // parsed) throughout.
    let desc = "MERGE(contacts=1,period=60):MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
    for seed in 1..=3 {
        let mut w = joined_world(3, seed, NetConfig::reliable(), desc);
        let t0 = w.now();
        w.fault_at(t0, FaultRule::TargetedCorrupt { src: ep(2), every_nth: 3 });
        for flap in 0..2u64 {
            let t = w.now();
            for other in [ep(1), ep(2)] {
                for (from, to) in [(ep(3), other), (other, ep(3))] {
                    w.fault_at(
                        t,
                        FaultRule::BurstLoss {
                            from,
                            to,
                            start: t + Duration::from_millis(10),
                            end: t + Duration::from_millis(700),
                        },
                    );
                }
            }
            w.run_for(Duration::from_millis(650));
            assert_eq!(
                w.installed_views(ep(1)).last().unwrap().members(),
                &[ep(1), ep(2)],
                "seed {seed} flap {flap}: flaky member excluded"
            );
            w.run_for(Duration::from_secs(12));
            for i in 1..=3u64 {
                let v = w.installed_views(ep(i)).last().unwrap().clone();
                assert_eq!(v.len(), 3, "seed {seed} flap {flap} ep{i}: re-merged, got {v}");
            }
        }
        assert!(w.is_alive(ep(3)), "seed {seed}: the flaky member never actually died");
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty(), "seed {seed}");
        assert!(w.net_stats().corrupted_targeted > 0, "seed {seed}: corruption must have hit");
        assert!(w.net_stats().dropped_burst > 0, "seed {seed}: the flaps must have bitten");
    }
}

/// A fully scripted run with all four rule types active plus global chaos
/// physics; returns every observable.
fn scripted_fault_run(seed: u64) -> Vec<String> {
    let mut cfg = NetConfig::lossy(0.05);
    cfg.duplicate = 0.03;
    cfg.latency_max = Duration::from_millis(2);
    let mut w = joined_world(4, seed, cfg, VSYNC);
    let t = w.now();
    for (_, rule) in rules() {
        w.fault_at(t + Duration::from_millis(2), rule);
    }
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3), ep(4)], 40);
    wl.schedule(&mut w, t + Duration::from_millis(5));
    w.run_for(Duration::from_secs(4));
    let mut out = Vec::new();
    for i in 1..=4u64 {
        for (at, up) in w.upcalls(ep(i)) {
            let detail = match up {
                Up::Cast { src, msg } => format!("{src}:{:?}", msg.body()),
                Up::View(v) => v.to_string(),
                other => other.kind().to_string(),
            };
            out.push(format!("ep{i} [{at}] {} {detail}", up.kind()));
        }
    }
    out.push(format!("net {:?}", w.net_stats()));
    out.push(format!("hits {:?}", w.net_mut().fault_hits().to_vec()));
    out
}

#[test]
fn fault_scripts_replay_byte_identically() {
    for seed in [31u64, 32] {
        let a = scripted_fault_run(seed);
        let b = scripted_fault_run(seed);
        assert_eq!(a, b, "seed {seed}: (seed, script) must be one execution");
    }
    assert_ne!(scripted_fault_run(31), scripted_fault_run(32), "seeds must diverge");
}
