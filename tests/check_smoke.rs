//! Model-checking smoke benchmark — the headline numbers for the
//! `horus-check` subsystem, recorded in `BENCH_check.json` (style of
//! `BENCH_packing.json` / `BENCH_dispatch.json`).
//!
//! Three claims, measured on the `flush3` scenario (the Figure 2
//! flush/merge story at 3 endpoints with a 1-drop budget):
//!
//! 1. **The bounded space is exhaustible**: the explorer drains the
//!    frontier within the budgets instead of merely sampling it.
//! 2. **Exploration is fast enough for CI**: states/second is recorded so
//!    regressions in fingerprinting or re-execution cost show up as a
//!    number, not as a mysteriously slower pipeline.
//! 3. **The reduction earns its keep**: runs with the commutativity
//!    reduction on and off are both recorded; off must explore at least as
//!    many runs (it considers strictly more interleavings).
//!
//! Ignored by default: it is a timing test and only means anything in
//! release mode.  Run with
//! `cargo test --release --test check_smoke -- --ignored`.

use horus_check::{explore, CheckConfig, Scenario};
use std::time::{Duration, Instant};

#[test]
#[ignore = "timing smoke; run explicitly in release"]
fn check_explorer_smoke() {
    let scenario = Scenario::by_name("flush3").expect("registered scenario");
    let cfg = CheckConfig {
        window: Duration::from_micros(100),
        max_depth: 5,
        max_drops: 1,
        max_states: 50_000,
        max_runs: 5_000,
        ..CheckConfig::default()
    };

    let t0 = Instant::now();
    let on = explore(scenario, &cfg);
    let secs_on = t0.elapsed().as_secs_f64();
    assert!(on.violation.is_none(), "flush3 must be clean: {:?}", on.violation);
    assert!(on.exhausted, "bounded space must be exhausted, not sampled");

    let t1 = Instant::now();
    let off = explore(scenario, &CheckConfig { reduction: false, ..cfg.clone() });
    let secs_off = t1.elapsed().as_secs_f64();
    assert!(off.violation.is_none(), "flush3 must be clean without reduction too");
    assert!(
        off.runs >= on.runs,
        "reduction off considers strictly more interleavings ({} vs {})",
        off.runs,
        on.runs
    );

    let states_per_sec = (on.states as f64 / secs_on.max(1e-9)) as u64;
    let json = format!(
        "{{\n  \"experiment\": \"check_explorer_smoke\",\n  \"scenario\": \"{}\",\n  \
         \"max_depth\": {},\n  \"max_drops\": {},\n  \"window_us\": {},\n  \
         \"reduction_on\": {{ \"runs\": {}, \"states\": {}, \"steps\": {}, \"pruned\": {}, \
         \"exhausted\": {}, \"secs\": {:.3} }},\n  \
         \"reduction_off\": {{ \"runs\": {}, \"states\": {}, \"steps\": {}, \"pruned\": {}, \
         \"exhausted\": {}, \"secs\": {:.3} }},\n  \"states_per_sec\": {}\n}}\n",
        scenario.name,
        cfg.max_depth,
        cfg.max_drops,
        cfg.window.as_micros(),
        on.runs,
        on.states,
        on.steps,
        on.pruned,
        on.exhausted,
        secs_on,
        off.runs,
        off.states,
        off.steps,
        off.pruned,
        off.exhausted,
        secs_off,
        states_per_sec,
    );
    let path = format!("{}/BENCH_check.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_check.json");
    println!("wrote {path}:\n{json}");
}
