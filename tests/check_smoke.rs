//! Model-checking smoke benchmark — the headline numbers for the
//! `horus-check` subsystem, recorded in `BENCH_check.json` (style of
//! `BENCH_packing.json` / `BENCH_dispatch.json`).
//!
//! Seven claims, measured on the `flush3` scenario (the Figure 2
//! flush/merge story at 3 endpoints with a 1-drop budget):
//!
//! 1. **The bounded space is exhaustible**: the explorer drains the
//!    frontier within the budgets instead of merely sampling it.
//! 2. **Exploration is fast enough for CI**: states/second is recorded and
//!    gated, so regressions in fingerprinting or re-execution cost show up
//!    as a failed test, not as a mysteriously slower pipeline.
//! 3. **The DPOR earns its keep — and loses nothing**: the sleep-set
//!    reduction must explore strictly fewer runs than reduction-off while
//!    visiting the *identical* state count (the endpoint-class heuristic it
//!    replaced skipped ~20% of reachable states; see EXPERIMENTS.md E27).
//! 4. **Incremental fingerprints earn their keep**: the same space explored
//!    with from-scratch fingerprints must be at least 2x slower per state.
//! 5. **Snapshot resume earns its keep**: the same tree walked by stateless
//!    replay re-executes strictly more events and more wall-clock.
//! 6. **Parallel exploration is worker-count independent**: the 1/2/4-worker
//!    arms reach the same exhaustion verdict over the same space, and on
//!    multi-core hardware more workers finish no slower.
//! 7. **CoW snapshots earn their keep**: at depth 7 — where every branch
//!    point parks a sibling world — the copy-on-write arm must duplicate
//!    strictly less layer state than the deep-clone arm over the same tree
//!    (`horus_core::stack::layer_clones`, the bytes-cloned proxy).
//!
//! Ignored by default: it is a timing test and only means anything in
//! release mode.  Run with
//! `cargo test --release --test check_smoke -- --ignored`.

use horus_check::{explore, explore_parallel, CheckConfig, CheckReport, Scenario};
use horus_core::stack::{layer_clones, reset_layer_clones};
use std::time::{Duration, Instant};

/// Best-of-3 timing: exploration is deterministic, so the reports are
/// identical across repetitions and the minimum wall-clock is the repetition
/// least disturbed by scheduler noise (the standard benchmarking estimator).
fn timed(f: impl Fn() -> CheckReport) -> (CheckReport, f64) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    (report.expect("ran at least once"), best)
}

fn arm_json(label: &str, r: &CheckReport, secs: f64) -> String {
    format!(
        "  \"{label}\": {{ \"runs\": {}, \"states\": {}, \"steps\": {}, \"pruned\": {}, \
         \"exhausted\": {}, \"secs\": {:.3} }}",
        r.runs, r.states, r.steps, r.pruned, r.exhausted, secs,
    )
}

/// Like [`arm_json`] but carrying the layer-clone counter — the snapshot
/// arms are about clone work, not wall-clock.
fn arm_json_clones(label: &str, r: &CheckReport, secs: f64, clones: u64) -> String {
    format!(
        "  \"{label}\": {{ \"runs\": {}, \"states\": {}, \"steps\": {}, \"pruned\": {}, \
         \"exhausted\": {}, \"secs\": {:.3}, \"layer_clones\": {clones} }}",
        r.runs, r.states, r.steps, r.pruned, r.exhausted, secs,
    )
}

#[test]
#[ignore = "timing smoke; run explicitly in release"]
fn check_explorer_smoke() {
    let scenario = Scenario::by_name("flush3").expect("registered scenario");
    let cfg = CheckConfig {
        window: Duration::from_micros(100),
        max_depth: 5,
        max_drops: 1,
        max_states: 200_000,
        max_runs: 20_000,
        ..CheckConfig::default()
    };

    // Arm 1: the default path — sequential, reduction on, incremental
    // fingerprints.  This is the configuration whose throughput is gated.
    let (on, secs_on) = timed(|| explore(scenario, &cfg));
    assert!(on.violation.is_none(), "flush3 must be clean: {:?}", on.violation);
    assert!(on.exhausted, "bounded space must be exhausted, not sampled");

    // Arm 2: reduction off — strictly more interleavings, same states.  The
    // state-count equality is the soundness half of the DPOR claim: the
    // sleep sets may skip *runs*, never *states* (the full fingerprint-set
    // differential lives in tests/check_dpor.rs).
    let (off, secs_off) =
        timed(|| explore(scenario, &CheckConfig { reduction: false, ..cfg.clone() }));
    assert!(off.violation.is_none(), "flush3 must be clean without reduction too");
    assert!(
        off.runs >= on.runs,
        "reduction off considers strictly more interleavings ({} vs {})",
        off.runs,
        on.runs
    );
    assert_eq!(off.states, on.states, "DPOR must not skip states, only runs");

    // Arm 3: incremental fingerprints off — same space, from-scratch hash at
    // every step.  The whole point of the caches is this ratio.
    let (fresh, secs_fresh) =
        timed(|| explore(scenario, &CheckConfig { incremental_fp: false, ..cfg.clone() }));
    assert!(fresh.violation.is_none());
    assert_eq!(fresh.states, on.states, "fingerprint implementation changed the space");
    assert_eq!(fresh.runs, on.runs, "fingerprint implementation changed the search");

    // Arm 3b: snapshot resume off — same tree via stateless replay (build +
    // prefix re-execution per run).  `steps` is the whole story: resumed
    // runs execute only their suffix.
    let (nosnap, secs_nosnap) =
        timed(|| explore(scenario, &CheckConfig { snapshot_resume: false, ..cfg.clone() }));
    assert!(nosnap.violation.is_none());
    assert_eq!(nosnap.states, on.states, "snapshot resume changed the space");
    assert_eq!(nosnap.runs, on.runs, "snapshot resume changed the search");
    assert!(
        on.steps <= nosnap.steps,
        "snapshot resume must not re-execute prefixes ({} vs {} steps)",
        on.steps,
        nosnap.steps
    );
    assert!(
        secs_on < secs_nosnap,
        "snapshot resume must beat stateless replay ({secs_on:.3}s vs {secs_nosnap:.3}s)"
    );
    let sps_incremental = on.states as f64 / secs_on.max(1e-9);
    let sps_fresh = fresh.states as f64 / secs_fresh.max(1e-9);
    let speedup = sps_incremental / sps_fresh.max(1e-9);
    // Floor recalibrated for the DPOR search: the sleep sets keep ~8x more
    // runs alive than the retired endpoint-class heuristic, so a larger
    // share of each state's cost is snapshotting and sleep bookkeeping that
    // both arms pay equally — the hashing ratio measured here lands ~2.2-2.6x
    // where the old, smaller search measured ~3-4x.
    assert!(
        speedup >= 2.0,
        "incremental fingerprints must be >= 2x fresh recomputation, got {speedup:.2}x \
         ({sps_incremental:.0} vs {sps_fresh:.0} states/sec)"
    );

    // Throughput floor for the default path; see EXPERIMENTS.md E25 for the
    // machine this was calibrated on.
    let states_per_sec = sps_incremental as u64;
    assert!(
        states_per_sec >= 100_000,
        "default-path throughput regressed below the floor: {states_per_sec} states/sec"
    );

    // Arms 4-6: parallel exploration with 1, 2, and 4 workers.  Worker count
    // must not change the verdict; per-task visited sets mean `states`
    // counts duplicates across tasks, so only the 2- and 4-worker arms are
    // compared to each other (identical task decomposition, different
    // dealing) while all arms must exhaust cleanly.
    let (w1, secs_w1) = timed(|| explore_parallel(scenario, &cfg, 1));
    let (w2, secs_w2) = timed(|| explore_parallel(scenario, &cfg, 2));
    let (w4, secs_w4) = timed(|| explore_parallel(scenario, &cfg, 4));
    for (label, r) in [("1", &w1), ("2", &w2), ("4", &w4)] {
        assert!(r.violation.is_none(), "{label}-worker arm found a phantom violation");
        assert!(r.exhausted, "{label}-worker arm failed to exhaust");
    }
    assert_eq!(w1.runs, w2.runs, "worker count changed the explored run set");
    assert_eq!(w2.runs, w4.runs, "worker count changed the explored run set");
    assert_eq!(w1.states, w2.states, "worker count changed per-task state accounting");
    assert_eq!(w2.states, w4.states, "worker count changed per-task state accounting");

    // Wall-clock gate only where the hardware can actually parallelize.
    let hardware_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if hardware_threads > 1 {
        assert!(
            secs_w4 < secs_w1,
            "4 workers must beat 1 on multi-core hardware ({secs_w4:.3}s vs {secs_w1:.3}s)"
        );
    }

    // Arms 7-8: copy-on-write vs deep-clone sibling snapshots, one depth
    // deeper so every run parks worlds seven branch points down.  Wall-clock
    // is within noise at this size (both ~0.05s), so the gate reads the
    // layer-clone counter — the bytes-cloned proxy: CoW duplicates a layer
    // only when a resumed sibling first mutates it, the deep arm duplicates
    // all of them at every snapshot.
    let deep_cfg = CheckConfig { max_depth: 7, ..cfg.clone() };
    let (dpor7, secs_dpor7) = timed(|| {
        reset_layer_clones();
        explore(scenario, &deep_cfg)
    });
    let clones_cow = layer_clones();
    let (deep7, secs_deep7) = timed(|| {
        reset_layer_clones();
        explore(scenario, &CheckConfig { cow_snapshots: false, ..deep_cfg.clone() })
    });
    let clones_deep = layer_clones();
    assert!(dpor7.violation.is_none() && dpor7.exhausted, "depth-7 flush3 must stay clean");
    assert_eq!(dpor7.runs, deep7.runs, "snapshot mechanism changed the run set");
    assert_eq!(dpor7.states, deep7.states, "snapshot mechanism changed the space");
    assert_eq!(dpor7.steps, deep7.steps, "snapshot mechanism changed executed steps");
    assert!(
        clones_cow < clones_deep,
        "CoW snapshots must clone strictly less layer state than deep clones \
         ({clones_cow} vs {clones_deep} layer clones)"
    );

    let arms = [
        arm_json("reduction_on", &on, secs_on),
        arm_json("reduction_off", &off, secs_off),
        arm_json("incremental_off", &fresh, secs_fresh),
        arm_json("snapshot_off", &nosnap, secs_nosnap),
        arm_json("workers_1", &w1, secs_w1),
        arm_json("workers_2", &w2, secs_w2),
        arm_json("workers_4", &w4, secs_w4),
        arm_json_clones("dpor", &dpor7, secs_dpor7, clones_cow),
        arm_json_clones("cow_off", &deep7, secs_deep7, clones_deep),
    ]
    .join(",\n");
    let json = format!(
        "{{\n  \"experiment\": \"check_explorer_smoke\",\n  \"scenario\": \"{}\",\n  \
         \"max_depth\": {},\n  \"max_drops\": {},\n  \"window_us\": {},\n\
         {arms},\n  \
         \"states_per_sec\": {},\n  \"incremental_speedup\": {:.2},\n  \
         \"hardware_threads\": {}\n}}\n",
        scenario.name,
        cfg.max_depth,
        cfg.max_drops,
        cfg.window.as_micros(),
        states_per_sec,
        speedup,
        hardware_threads,
    );
    let path = format!("{}/BENCH_check.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &json).expect("write BENCH_check.json");
    println!("wrote {path}:\n{json}");
}
