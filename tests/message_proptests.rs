//! Property-based tests on the core data structures: the message header
//! stack (both §10 layouts), the wire codec, view algebra, and the
//! property-set algebra.

use bytes::Bytes;
use horus_core::message::{FieldSpec, HeaderLayout, HeaderMode, Message};
use horus_core::wire::{WireReader, WireWriter};
use horus_core::{EndpointAddr, GroupAddr, View};
use horus_props::{derive_stack, plan_minimal_stack, PropSet};
use proptest::prelude::*;
use std::sync::Arc;

/// Static pool of field specs so layouts can borrow `'static` names.
const FIELD_POOL: &[FieldSpec] = &[
    FieldSpec::new("f1", 1),
    FieldSpec::new("f3", 3),
    FieldSpec::new("f8", 8),
    FieldSpec::new("f12", 12),
    FieldSpec::new("f20", 20),
    FieldSpec::new("f32", 32),
    FieldSpec::new("f48", 48),
    FieldSpec::new("f64", 64),
];

const LAYER_NAMES: &[&str] = &["L0", "L1", "L2", "L3", "L4", "L5"];

fn arb_layout() -> impl Strategy<Value = (Vec<Vec<usize>>, HeaderMode)> {
    (
        proptest::collection::vec(proptest::collection::vec(0..FIELD_POOL.len(), 0..4), 1..5),
        prop_oneof![Just(HeaderMode::Aligned), Just(HeaderMode::Compact)],
    )
}

fn build_layout(spec: &[Vec<usize>], mode: HeaderMode) -> Arc<HeaderLayout> {
    let mut field_store: Vec<Vec<FieldSpec>> = Vec::new();
    for per_layer in spec {
        field_store.push(per_layer.iter().map(|&i| FIELD_POOL[i]).collect());
    }
    let layers: Vec<(&'static str, &[FieldSpec])> =
        field_store.iter().enumerate().map(|(i, f)| (LAYER_NAMES[i], f.as_slice())).collect();
    let layout = HeaderLayout::build(&layers, mode).expect("valid layout");
    // field_store values were copied into the layout (FieldSpec: Copy).
    Arc::new(layout)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Whatever a sender stamps, in either layout, the receiver reads back
    /// bit-for-bit after a wire round trip.
    #[test]
    fn header_fields_roundtrip_through_the_wire(
        (spec, mode) in arb_layout(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        raw_vals in proptest::collection::vec(any::<u64>(), 24),
    ) {
        let layout = build_layout(&spec, mode);
        let mut msg = Message::new(layout.clone(), Bytes::from(body.clone()));
        // Down path: stamp every layer top→bottom.
        let mut vals = Vec::new();
        let mut k = 0;
        for (li, fields) in spec.iter().enumerate() {
            msg.push_header(li);
            let mut per_layer = Vec::new();
            for (fi, &pool_idx) in fields.iter().enumerate() {
                let bits = FIELD_POOL[pool_idx].bits;
                let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                let v = raw_vals[k % raw_vals.len()] & mask;
                k += 1;
                msg.set_field(li, fi, v);
                per_layer.push(v);
            }
            vals.push(per_layer);
        }
        // Wire round trip.
        let wire = msg.encode_inner();
        let mut rx = Message::decode_inner(layout, &wire).unwrap();
        prop_assert_eq!(&rx.body()[..], &body[..]);
        // Up path: pop bottom→top and compare.
        for li in (0..spec.len()).rev() {
            rx.pop_header(li).unwrap();
            for (fi, &expect) in vals[li].iter().enumerate() {
                prop_assert_eq!(rx.field(li, fi), expect, "layer {} field {}", li, fi);
            }
        }
    }

    /// Compact mode never uses more header bytes than aligned mode.
    #[test]
    fn compact_never_beats_aligned_at_its_own_game(
        (spec, _) in arb_layout(),
    ) {
        let compact = build_layout(&spec, HeaderMode::Compact);
        let aligned = build_layout(&spec, HeaderMode::Aligned);
        prop_assert!(compact.compact_bytes() <= aligned.aligned_bytes_all());
    }

    /// The wire helpers reject arbitrary truncations instead of panicking.
    #[test]
    fn wire_reader_never_panics_on_truncation(
        addrs in proptest::collection::vec(1u64..=u64::MAX, 0..8),
        cut in any::<u16>(),
    ) {
        let mut w = WireWriter::new();
        let eps: Vec<EndpointAddr> = addrs.iter().map(|&a| EndpointAddr::new(a)).collect();
        w.put_addrs(&eps);
        let buf = w.finish();
        let cut = (cut as usize).min(buf.len());
        let mut r = WireReader::new(&buf[..cut]);
        // Either parses a prefix or errors; never panics.
        let _ = r.get_addrs();
    }

    /// View succession keeps members unique, ordered by seniority, and
    /// the counter strictly increasing.
    #[test]
    fn view_succession_invariants(
        joins in proptest::collection::vec(2u64..50, 1..8),
        fail_idx in proptest::collection::vec(any::<proptest::sample::Index>(), 0..4),
    ) {
        let mut v = View::initial(GroupAddr::new(1), EndpointAddr::new(1));
        for &j in &joins {
            let joiner = EndpointAddr::new(j);
            if !v.contains(joiner) {
                v = v.with_joined(&[joiner]);
            }
            // Uniqueness + seniority order.
            let mut seen = std::collections::BTreeSet::new();
            for &m in v.members() {
                prop_assert!(seen.insert(m), "duplicate member in {v}");
            }
            for w2 in v.join_epochs().windows(2) {
                prop_assert!(w2[0] <= w2[1], "epochs must be non-decreasing in {v}");
            }
        }
        let before = v.id().counter;
        let candidates: Vec<EndpointAddr> = v.members().to_vec();
        let mut failed: Vec<EndpointAddr> = fail_idx
            .iter()
            .map(|ix| *ix.get(&candidates))
            .filter(|&m| m != EndpointAddr::new(1))
            .collect();
        failed.dedup();
        let v2 = v.successor(EndpointAddr::new(1), &failed, &[]);
        prop_assert!(v2.id().counter > before);
        for f in failed {
            prop_assert!(!v2.contains(f));
        }
    }

    /// Planner soundness over random requests: anything it returns is
    /// well-formed and provides the request.
    #[test]
    fn planner_is_sound_for_random_requests(req_bits in any::<u16>(), net_bits in any::<u16>()) {
        let required = PropSet::from_bits(req_bits);
        let network = PropSet::from_bits(net_bits);
        if let Ok(stack) = plan_minimal_stack(required, network) {
            let provided = derive_stack(&stack, network)
                .expect("planned stack must be well-formed");
            prop_assert!(
                provided.is_superset(required),
                "stack {:?} gives {} for request {}",
                stack, provided, required
            );
        }
    }
}
