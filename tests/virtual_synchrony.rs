//! E6 — randomized virtual-synchrony invariant checking (§5).
//!
//! Property-based: over random seeds, loss rates, group sizes, crash
//! schedules, and workloads, every execution of the membership stack must
//! satisfy the §5 guarantees — view agreement, same-view delivery
//! agreement among survivors, sender-in-view, monotone views.  The
//! deterministic simulator makes every failure reproducible from its
//! proptest seed.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload, WorkloadKind};
use horus_net::NetConfig;
use horus_sim::check_virtual_synchrony;
use proptest::prelude::*;
use std::time::Duration;

/// One randomized scenario: build, load, crash, check.
fn run_scenario(
    seed: u64,
    n: u64,
    loss_pct: u8,
    crash_victims: Vec<u64>,
    crash_at_ms: u64,
    slots: u64,
    kind: WorkloadKind,
) -> Result<(), TestCaseError> {
    let net = if loss_pct == 0 {
        NetConfig::reliable()
    } else {
        NetConfig::lossy(loss_pct as f64 / 100.0)
    };
    let mut w = SimWorld::new(seed, net);
    for i in 1..=n {
        let s = build_stack(ep(i), VSYNC, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=n {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    let t = w.now();
    let wl = Workload {
        kind,
        senders: (1..=n).map(ep).collect(),
        slots,
        interval: Duration::from_millis(1),
        payload: 24,
    };
    wl.schedule(&mut w, t + Duration::from_millis(1));
    // Crash the victims (never all members).
    for (j, &v) in crash_victims.iter().enumerate() {
        let victim = 1 + (v % n);
        if victim != 1 || crash_victims.len() < n as usize {
            w.crash_at(t + Duration::from_millis(crash_at_ms + 7 * j as u64), ep(victim));
        }
    }
    w.run_for(Duration::from_secs(6));

    let alive: Vec<u64> = (1..=n).filter(|&i| w.is_alive(ep(i))).collect();
    prop_assert!(!alive.is_empty(), "some member must survive");
    let logs = logs(&w, n);
    let violations = check_virtual_synchrony(&logs);
    prop_assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    // Liveness: survivors converged on a view containing exactly the
    // surviving members.
    let expect: Vec<EndpointAddr> = alive.iter().map(|&i| ep(i)).collect();
    for &i in &alive {
        let v = w.installed_views(ep(i)).last().unwrap().clone();
        prop_assert_eq!(v.members(), &expect[..], "seed {} ep{} final view {}", seed, i, v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn virtual_synchrony_holds_under_random_crashes(
        seed in 0u64..10_000,
        n in 2u64..=5,
        loss_pct in prop_oneof![Just(0u8), Just(5u8), Just(12u8)],
        victims in proptest::collection::vec(0u64..100, 0..=2),
        crash_at in 2u64..40,
        slots in 5u64..40,
        kind in prop_oneof![Just(WorkloadKind::RoundRobin), Just(WorkloadKind::AllToAll)],
    ) {
        run_scenario(seed, n, loss_pct, victims, crash_at, slots, kind)?;
    }
}

#[test]
fn regression_two_simultaneous_crashes() {
    run_scenario(4242, 5, 10, vec![1, 2], 10, 30, WorkloadKind::AllToAll).unwrap();
}

#[test]
fn regression_crash_during_group_formation_churn() {
    // Crash immediately after the workload starts, while stability
    // machinery is still warming up.
    run_scenario(77, 4, 12, vec![3], 2, 40, WorkloadKind::RoundRobin).unwrap();
}
