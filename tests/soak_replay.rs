//! Replayable soak-artifact corpus.
//!
//! Every `tests/fixtures/*.soak` file is a `(seed, plan)` pair the chaos
//! soak once minimized: the full campaign takes minutes of randomized
//! exploration, but the artifact replays its verdict in one deterministic
//! run.  Two kinds live here:
//!
//! * **regression pins** — plans that once wedged or diverged the group and
//!   must stay clean after the protocol fix;
//! * **planted-bug witnesses** — plans over a deliberately broken stack
//!   (NAK retransmission off) that the liveness monitors must keep
//!   indicting, proving the oracles have teeth.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::soak::{parse_artifact, run_soak, run_soak_traced, SoakConfig, SoakPlan};
use horus::trace::TraceBuf;
use std::sync::Arc;

fn fixture(name: &str) -> (SoakConfig, SoakPlan) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_artifact(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn replay(cfg: &SoakConfig, plan: &SoakPlan) -> horus::sim::soak::SoakOutcome {
    let stack = cfg.stack.clone();
    let factory =
        |ep: EndpointAddr| build_stack(ep, &stack, StackConfig::default()).expect("stack builds");
    run_soak(cfg, plan, &factory)
}

#[test]
fn planted_nak_bug_is_still_indicted() {
    // One suspicion storm against a stack whose NAK layer never
    // retransmits: the excluded member can rejoin but its recovery traffic
    // is lossy with no repair, so the group never reconverges.  The
    // view-convergence liveness monitor must keep catching this — if it
    // goes quiet, the oracles lost their teeth, not the protocol its bug.
    let (cfg, plan) = fixture("soak_planted_nak.soak");
    assert!(cfg.stack.contains("retransmit=false"), "fixture must carry the planted bug");
    let outcome = replay(&cfg, &plan);
    assert!(!outcome.violations.is_empty(), "planted bug must replay to a violation");
    assert!(
        outcome.violations.iter().any(|v| v.to_string().contains("liveness")),
        "the indictment must come from a liveness monitor, got {:?}",
        outcome.violations.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn former_wedge_plan_replays_clean() {
    // The minimized (partition, crash) pair that once drove the flush
    // protocol into a restart-grant livelock.  The hardened protocol must
    // drain it: any violation here is a regression in the merge/flush
    // recovery path.
    let (cfg, plan) = fixture("soak_wedge_regression.soak");
    let outcome = replay(&cfg, &plan);
    assert!(
        outcome.violations.is_empty(),
        "regression pin went red: {:?}",
        outcome.violations.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(outcome.delivered > 0, "the replay must actually deliver traffic");
}

#[test]
fn soak_replay_is_byte_identical_across_repetition() {
    // The artifact contract: a (seed, plan) pair is the whole truth.  Two
    // independent replays must agree on every view, every cast, every
    // timestamp — byte-for-byte — or minimized artifacts stop being
    // evidence.
    for name in ["soak_planted_nak.soak", "soak_wedge_regression.soak"] {
        let (cfg, plan) = fixture(name);
        let first = replay(&cfg, &plan);
        let second = replay(&cfg, &plan);
        assert_eq!(first.transcript, second.transcript, "{name}: transcript drift");
        assert_eq!(
            first.violations.iter().map(ToString::to_string).collect::<Vec<_>>(),
            second.violations.iter().map(ToString::to_string).collect::<Vec<_>>(),
            "{name}: verdict drift"
        );
        assert_eq!(first.delivered, second.delivered, "{name}: delivery-count drift");
    }
}

#[test]
fn attaching_a_sampling_trace_does_not_perturb_the_replay() {
    // Observation must be free: a soak replayed with a 1-in-N sampling
    // sink attached has to reproduce the untraced transcript and verdict
    // byte for byte, while the sampler's counters account for every event
    // it saw — kept plus sampled-out, nothing double-counted.
    let (mut cfg, plan) = fixture("soak_wedge_regression.soak");
    cfg.trace_sample = 4;
    let stack = cfg.stack.clone();
    let factory =
        |ep: EndpointAddr| build_stack(ep, &stack, StackConfig::default()).expect("stack builds");
    let untraced = run_soak(&cfg, &plan, &factory);
    let buf = Arc::new(TraceBuf::new());
    let traced = run_soak_traced(&cfg, &plan, &factory, Some(buf.clone()));
    assert_eq!(untraced.transcript, traced.transcript, "tracing perturbed the replay");
    assert_eq!(untraced.delivered, traced.delivered, "tracing perturbed delivery");
    let records = buf.take();
    assert_eq!(
        records.len() as u64,
        traced.trace_kept,
        "buffer must hold exactly the kept records"
    );
    assert!(traced.trace_kept > 0, "a wedge replay must record something at 1-in-4");
    assert!(traced.trace_sampled_out > 0, "at 1-in-4 most events must be sampled out");
    // Untraced runs report zero counters — the fields mean "what the
    // sampler saw", not "what would have been seen".
    assert_eq!((untraced.trace_kept, untraced.trace_sampled_out), (0, 0));
    // And the sampled capture replays deterministically too.
    let buf2 = Arc::new(TraceBuf::new());
    let again = run_soak_traced(&cfg, &plan, &factory, Some(buf2.clone()));
    assert_eq!(
        (again.trace_kept, again.trace_sampled_out),
        (traced.trace_kept, traced.trace_sampled_out),
        "sampling counters must be deterministic"
    );
}
