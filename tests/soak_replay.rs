//! Replayable soak-artifact corpus.
//!
//! Every `tests/fixtures/*.soak` file is a `(seed, plan)` pair the chaos
//! soak once minimized: the full campaign takes minutes of randomized
//! exploration, but the artifact replays its verdict in one deterministic
//! run.  Two kinds live here:
//!
//! * **regression pins** — plans that once wedged or diverged the group and
//!   must stay clean after the protocol fix;
//! * **planted-bug witnesses** — plans over a deliberately broken stack
//!   (NAK retransmission off) that the liveness monitors must keep
//!   indicting, proving the oracles have teeth.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::soak::{parse_artifact, run_soak, SoakConfig, SoakPlan};

fn fixture(name: &str) -> (SoakConfig, SoakPlan) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_artifact(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn replay(cfg: &SoakConfig, plan: &SoakPlan) -> horus::sim::soak::SoakOutcome {
    let stack = cfg.stack.clone();
    let factory =
        |ep: EndpointAddr| build_stack(ep, &stack, StackConfig::default()).expect("stack builds");
    run_soak(cfg, plan, &factory)
}

#[test]
fn planted_nak_bug_is_still_indicted() {
    // One suspicion storm against a stack whose NAK layer never
    // retransmits: the excluded member can rejoin but its recovery traffic
    // is lossy with no repair, so the group never reconverges.  The
    // view-convergence liveness monitor must keep catching this — if it
    // goes quiet, the oracles lost their teeth, not the protocol its bug.
    let (cfg, plan) = fixture("soak_planted_nak.soak");
    assert!(cfg.stack.contains("retransmit=false"), "fixture must carry the planted bug");
    let outcome = replay(&cfg, &plan);
    assert!(!outcome.violations.is_empty(), "planted bug must replay to a violation");
    assert!(
        outcome.violations.iter().any(|v| v.to_string().contains("liveness")),
        "the indictment must come from a liveness monitor, got {:?}",
        outcome.violations.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn former_wedge_plan_replays_clean() {
    // The minimized (partition, crash) pair that once drove the flush
    // protocol into a restart-grant livelock.  The hardened protocol must
    // drain it: any violation here is a regression in the merge/flush
    // recovery path.
    let (cfg, plan) = fixture("soak_wedge_regression.soak");
    let outcome = replay(&cfg, &plan);
    assert!(
        outcome.violations.is_empty(),
        "regression pin went red: {:?}",
        outcome.violations.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(outcome.delivered > 0, "the replay must actually deliver traffic");
}

#[test]
fn soak_replay_is_byte_identical_across_repetition() {
    // The artifact contract: a (seed, plan) pair is the whole truth.  Two
    // independent replays must agree on every view, every cast, every
    // timestamp — byte-for-byte — or minimized artifacts stop being
    // evidence.
    for name in ["soak_planted_nak.soak", "soak_wedge_regression.soak"] {
        let (cfg, plan) = fixture(name);
        let first = replay(&cfg, &plan);
        let second = replay(&cfg, &plan);
        assert_eq!(first.transcript, second.transcript, "{name}: transcript drift");
        assert_eq!(
            first.violations.iter().map(ToString::to_string).collect::<Vec<_>>(),
            second.violations.iter().map(ToString::to_string).collect::<Vec<_>>(),
            "{name}: verdict drift"
        );
        assert_eq!(first.delivered, second.delivered, "{name}: delivery-count drift");
    }
}
