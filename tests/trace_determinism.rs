//! Determinism contracts of the tracing subsystem.
//!
//! Five claims, each an end-to-end loop:
//!
//! 1. **Worker-count independence**: the counterexample `explore_parallel`
//!    reports is the same for `--workers 1` and `--workers 4`, and its
//!    traced replay serializes *byte-identically* — tracing adds
//!    observability without adding nondeterminism.
//! 2. **Cross-executor agreement**: the same workload run under the
//!    threaded and the sharded real-time executors yields the same
//!    canonical delivery projection (per `(receiver, sender)` CAST digest
//!    sequences) — the executor-independent part of a trace really is
//!    executor-independent.
//! 3. **The trace→schedule bridge round-trips**: the committed soak-wedge
//!    fault plan, replayed as the `soakwedge` scenario with tracing on,
//!    bridges back into exactly the committed `.check` fixture and the
//!    same verdict.
//! 4. **Latency stats are format- and run-independent**: the per-layer
//!    histograms computed from the v1 text and from its v2 binary
//!    re-encoding are equal, and the rendered quantile table is
//!    byte-identical across repeated traced replays.
//! 5. **Live equals offline**: a [`MetricsSink`] installed as the tracer
//!    of a replay snapshots to exactly the histograms the offline
//!    [`latency_stats`] pass extracts from a captured trace of the same
//!    replay.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus_check::schedule::verdict_line;
use horus_check::{
    explore_parallel, replay_choices, replay_choices_traced, schedule_from_trace, trace_meta,
    CheckConfig, Scenario,
};
use horus_core::trace::TraceSink;
use horus_net::LoopbackNet;
use horus_sim::shard::{ShardConfig, ShardExecutor};
use horus_sim::threaded::{DispatchModel, ThreadedEndpoint};
use horus_trace::{
    delivery_projection, kind_counts, latency_stats, parse_trace, parse_trace_v2, serialize_trace,
    trace_to_v2, LatencyStats, MetricsSink, TraceBuf, TraceRing,
};
use std::sync::Arc;
use std::time::Duration;

fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

/// Serializes the traced replay of `choices` (meta included, so the result
/// is exactly what `horus-check replay --trace` writes).
fn traced_replay_text(scenario: &Scenario, choices: &[u16], cfg: &CheckConfig) -> String {
    let buf = Arc::new(TraceBuf::new());
    let _ = replay_choices_traced(scenario, choices, cfg, buf.clone() as Arc<dyn TraceSink>);
    serialize_trace(&trace_meta(scenario, cfg), &buf.take())
}

#[test]
fn traced_replay_is_byte_deterministic() {
    let scenario = Scenario::by_name("fifo2").unwrap();
    let cfg = CheckConfig::default();
    let first = traced_replay_text(scenario, &[1], &cfg);
    assert!(first.lines().count() > 10, "a replay must actually record events");
    for _ in 0..2 {
        assert_eq!(traced_replay_text(scenario, &[1], &cfg), first);
    }
}

#[test]
fn worker_counts_agree_down_to_trace_bytes() {
    // The parallel explorer's determinism contract, extended through the
    // tracer: both worker counts find the same counterexample, and tracing
    // its replay produces the same bytes.
    let scenario = Scenario::by_name("fifo2").unwrap();
    let cfg = CheckConfig { max_depth: 3, max_states: 5_000, max_runs: 500, ..Default::default() };
    let one = explore_parallel(scenario, &cfg, 1).violation.expect("planted bug");
    let four = explore_parallel(scenario, &cfg, 4).violation.expect("planted bug");
    assert_eq!(one.choices, four.choices, "counterexample must be worker-count independent");
    let trace_one = traced_replay_text(scenario, &one.choices, &cfg);
    let trace_four = traced_replay_text(scenario, &four.choices, &cfg);
    assert_eq!(trace_one, trace_four, "traces must be byte-identical across worker counts");
}

/// Runs `casts` casts from each of two members over bare COM under the
/// threaded executor, tracing into a ring; returns the canonical
/// projection of the captured trace.
fn threaded_projection(casts: usize) -> std::collections::BTreeMap<(u64, u64), Vec<u64>> {
    let ring = Arc::new(TraceRing::with_capacity(1 << 14));
    let net = LoopbackNet::new();
    let g = GroupAddr::new(1);
    let mut endpoints: Vec<ThreadedEndpoint> = (1..=2)
        .map(|i| {
            let mut s =
                build_stack(ep(i), "COM(promiscuous=true)", StackConfig::default()).unwrap();
            s.set_tracer(ring.clone());
            ThreadedEndpoint::spawn(s, net.clone(), DispatchModel::EventQueue)
        })
        .collect();
    for e in &endpoints {
        e.down(Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(20));
    for k in 0..casts {
        endpoints[0].cast_bytes(format!("1:{k}"));
        endpoints[1].cast_bytes(format!("2:{k}"));
    }
    // Loopback delivers to the whole group, senders included.
    let ok = endpoints[0].wait_until(Duration::from_secs(20), |_| {
        endpoints.iter().all(|e| e.cast_count() >= 2 * casts)
    });
    assert!(ok, "threaded flood incomplete");
    for e in &mut endpoints {
        e.stop();
    }
    projection_of(&ring)
}

/// The same workload under the sharded executor.
fn sharded_projection(casts: usize) -> std::collections::BTreeMap<(u64, u64), Vec<u64>> {
    let ring = Arc::new(TraceRing::with_capacity(1 << 14));
    let mut ex = ShardExecutor::new(LoopbackNet::new(), ShardConfig::with_shards(2));
    let g = GroupAddr::new(1);
    for i in 1..=2 {
        let mut s = build_stack(ep(i), "COM(promiscuous=true)", StackConfig::default()).unwrap();
        s.set_tracer(ring.clone());
        ex.add_stack(s);
        ex.down(ep(i), Down::Join { group: g });
    }
    std::thread::sleep(Duration::from_millis(20));
    for k in 0..casts {
        ex.cast_bytes(ep(1), format!("1:{k}"));
        ex.cast_bytes(ep(2), format!("2:{k}"));
    }
    let ok = ex.wait_until(Duration::from_secs(20), |ex| {
        (1..=2).all(|i| ex.cast_count(ep(i)) >= 2 * casts)
    });
    assert!(ok, "sharded flood incomplete");
    ex.stop();
    projection_of(&ring)
}

fn projection_of(ring: &TraceRing) -> std::collections::BTreeMap<(u64, u64), Vec<u64>> {
    assert_eq!(ring.dropped(), 0, "ring must be sized for the workload");
    let text = serialize_trace(&[], &ring.drain());
    delivery_projection(&parse_trace(&text).unwrap().records)
}

#[test]
fn threaded_and_sharded_executors_project_identically() {
    // Cross-sender interleaving is scheduling noise; what must agree is the
    // per-(receiver, sender) digest sequence — per-sender FIFO holds on the
    // loopback channels and the shard queues alike.
    const CASTS: usize = 40;
    let threaded = threaded_projection(CASTS);
    let sharded = sharded_projection(CASTS);
    assert_eq!(threaded, sharded, "canonical projections must agree across executors");
    // And the projection is not vacuous: both senders reached both members.
    assert_eq!(threaded.len(), 4, "two senders times two receivers");
    for ((rx, tx), digests) in &threaded {
        assert_eq!(digests.len(), CASTS, "stream ep:{tx} -> ep:{rx} lost casts");
    }
}

/// Renders the stats the way `horus-trace stats --latency` does — one
/// `count p50 p90 p99 max` row per `(endpoint, layer)`. Integer-only, so
/// equal histograms render to equal bytes.
fn latency_table(stats: &LatencyStats) -> String {
    let mut out = String::new();
    for (title, map) in [("dwell", &stats.dwell), ("timer", &stats.timer)] {
        for ((ep, layer), h) in map {
            out.push_str(&format!(
                "{title} ep:{ep} {layer} {} {} {} {} {}\n",
                h.count(),
                h.quantile(50, 100),
                h.quantile(90, 100),
                h.quantile(99, 100),
                h.max()
            ));
        }
    }
    out
}

#[test]
fn latency_stats_agree_across_formats_and_runs() {
    // The `stats --latency` acceptance loop: the same capture must yield
    // the same histograms whether it is read as v1 text or as its v2
    // binary re-encoding, and re-capturing must reproduce the table.
    let scenario = Scenario::by_name("flush3").unwrap();
    let cfg = CheckConfig::default();
    let text = traced_replay_text(scenario, &[], &cfg);
    let v1 = parse_trace(&text).unwrap();
    let from_v1 = latency_stats(&v1.records);
    assert!(!from_v1.dwell.is_empty(), "a flush3 replay must cross layers");
    let v2 = parse_trace_v2(&trace_to_v2(&v1)).unwrap();
    assert_eq!(latency_stats(&v2.records), from_v1, "v1 and v2 must agree on latency");
    let table = latency_table(&from_v1);
    assert!(table.lines().count() >= 2, "per-layer rows must be non-empty");
    for _ in 0..2 {
        let rerun = parse_trace(&traced_replay_text(scenario, &[], &cfg)).unwrap();
        assert_eq!(
            latency_table(&latency_stats(&rerun.records)),
            table,
            "latency table must be byte-identical across runs"
        );
    }
}

#[test]
fn metrics_sink_matches_the_offline_pass() {
    // The live collector's contract: installing a MetricsSink during a
    // replay yields exactly what parsing a captured trace of the same
    // replay and running `latency_stats` over it yields.
    let scenario = Scenario::by_name("flush3").unwrap();
    let cfg = CheckConfig::default();
    let live = Arc::new(MetricsSink::new());
    let _ = replay_choices_traced(scenario, &[], &cfg, live.clone() as Arc<dyn TraceSink>);
    let snap = live.snapshot();
    let offline = parse_trace(&traced_replay_text(scenario, &[], &cfg)).unwrap();
    assert_eq!(snap.records as usize, offline.records.len(), "record counts must agree");
    assert_eq!(snap.kinds, kind_counts(&offline.records), "kind counts must agree");
    assert_eq!(snap.latency, latency_stats(&offline.records), "histograms must agree");
    assert!(!snap.latency.is_empty(), "the comparison must not be vacuous");
}

#[test]
fn soak_wedge_plan_bridges_to_the_committed_fixture() {
    // The loop the subsystem exists for: the soak-minimized wedge plan
    // (tests/fixtures/soak_wedge_regression.soak) re-enacted as the
    // `soakwedge` scenario, traced, bridged — must equal the committed
    // schedule fixture byte for byte and replay to its verdict.
    let scenario = Scenario::by_name("soakwedge").unwrap();
    let cfg = CheckConfig::default();
    let text = traced_replay_text(scenario, &[], &cfg);
    let trace = parse_trace(&text).unwrap();
    assert!(
        trace.records.iter().any(|r| r.kind == "partition")
            && trace.records.iter().any(|r| r.kind == "crash"),
        "the fault plan's partition and crash must appear in the trace"
    );
    let schedule = schedule_from_trace(&trace).expect("trace bridges");
    let fixture_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/soakwedge_bridge.check");
    let committed = std::fs::read_to_string(fixture_path).expect("committed fixture exists");
    assert_eq!(schedule.serialize(), committed, "bridged schedule drifted from the fixture");
    let rec = replay_choices(scenario, &schedule.choices, &cfg);
    assert_eq!(verdict_line(&rec), schedule.verdict);
    assert_eq!(schedule.verdict, "clean", "the healed wedge plan must stay clean");
}
