//! Consistency between the property matrix (horus-props) and the layer
//! registry (horus-layers): every matrix row is buildable, every
//! registered layer is either in the matrix or explicitly transparent,
//! and planner output feeds straight into the stack builder.

mod common;

use common::*;
use horus::layers::registry::{build_layer, build_stack, layer_names, parse_stack};
use horus::prelude::*;
use horus::props::{derive_stack, plan_minimal_stack, Prop, PropSet};
use horus::sim::SimWorld;
use horus_net::NetConfig;
use horus_props::matrix::matrix_names;
use std::time::Duration;

#[test]
fn every_matrix_row_is_a_buildable_layer() {
    for name in matrix_names() {
        let spec = parse_stack(name).unwrap().remove(0);
        let layer = build_layer(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(layer.name(), name);
    }
}

#[test]
fn every_registered_layer_is_classified() {
    // A registered layer must be in the matrix OR in the checker's
    // transparent list — nothing may silently lack property semantics.
    let matrix: Vec<&str> = matrix_names();
    for name in layer_names() {
        let transparent = derive_stack(&[name, "COM"], PropSet::of(&[Prop::BestEffort])).is_ok()
            || matrix.contains(&name);
        assert!(
            transparent || matrix.contains(&name),
            "{name} is neither in the matrix nor treated as transparent"
        );
    }
}

#[test]
fn planner_output_builds_and_runs() {
    // Close the loop of §6: request properties, plan the stack, build it
    // through the registry, run it, observe the property.
    let stack =
        plan_minimal_stack(PropSet::of(&[Prop::TotalOrder]), PropSet::of(&[Prop::BestEffort]))
            .unwrap();
    // Promiscuous COM so the group can assemble by merging.
    let desc: String = stack
        .iter()
        .map(|&n| if n == "COM" { "COM(promiscuous=true)".to_string() } else { n.to_string() })
        .collect::<Vec<_>>()
        .join(":");
    let mut w = SimWorld::new(1, NetConfig::reliable());
    for i in 1..=3 {
        let s = build_stack(ep(i), &desc, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=3 {
        w.down(ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    for i in 1..=3u64 {
        w.cast_bytes(ep(i), format!("from {i}").into_bytes());
    }
    w.run_for(Duration::from_secs(1));
    let seq1: Vec<_> = w.delivered_casts(ep(1)).iter().map(|(s, b, _)| (*s, b.clone())).collect();
    assert_eq!(seq1.len(), 3);
    for i in 2..=3 {
        let seq: Vec<_> =
            w.delivered_casts(ep(i)).iter().map(|(s, b, _)| (*s, b.clone())).collect();
        assert_eq!(seq1, seq, "planned stack delivers in one total order");
    }
}

#[test]
fn ill_formed_stacks_fail_fast_in_the_algebra() {
    // The algebra rejects compositions before any packet flows: the
    // run-time "can I have these properties?" check of §6.
    let p1 = PropSet::of(&[Prop::BestEffort]);
    for bad in [
        vec!["TOTAL", "FRAG", "NAK", "COM"], // no membership under TOTAL
        vec!["MBRSHIP", "NAK", "COM"],       // no FRAG: large messages missing
        vec!["SAFE", "MBRSHIP", "FRAG", "NAK", "COM"], // no stability under SAFE
        vec!["COM", "NAK"],                  // upside down
    ] {
        assert!(derive_stack(&bad, p1).is_err(), "{bad:?} must be rejected by the property check");
    }
}
