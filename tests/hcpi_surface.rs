//! E1 — the HCPI surface (Tables 1 and 2).
//!
//! Every downcall of Table 1 is issued against a live stack and every
//! upcall of Table 2 is observed (or shown to be reachable), proving the
//! full interface of the paper exists and round-trips.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::collections::BTreeSet;
use std::time::Duration;

/// Collects the distinct upcall kinds an endpoint has seen.
fn kinds_seen(w: &SimWorld, e: EndpointAddr) -> BTreeSet<&'static str> {
    w.upcalls(e).iter().map(|(_, up)| up.kind()).collect()
}

#[test]
fn every_downcall_is_issuable_and_upcalls_flow() {
    // Stack with membership + stability so all call classes apply.
    // App-driven STABLE (so the `ack` downcall is load-bearing); no SAFE
    // above it, which would hold deliveries the app then could not ack.
    let desc = "STABLE(auto_ack=false):MBRSHIP(auto_merge=false):FRAG:NAK:COM(promiscuous=true)";
    let mut w = SimWorld::new(1, NetConfig::reliable());
    for i in 1..=3 {
        let s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        // Table 1 `endpoint` = stack creation; `join`:
        w.join(ep(i), group());
    }
    w.run_for(Duration::from_millis(50));

    // Table 1 `merge` (+ MERGE_REQUEST / merge_granted on the other side).
    w.down(ep(2), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_secs(1));
    let req = w
        .upcalls(ep(1))
        .iter()
        .find_map(|(_, up)| match up {
            Up::MergeRequest { id, .. } => Some(*id),
            _ => None,
        })
        .expect("MERGE_REQUEST upcall (Table 2)");
    w.down(ep(1), Down::MergeGranted(req));
    w.run_for(Duration::from_secs(1));
    assert_eq!(w.installed_views(ep(2)).last().unwrap().len(), 2);

    // A denied merge produces MERGE_DENIED at the requester.
    w.down(ep(3), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_millis(300));
    let req3 = w
        .upcalls(ep(1))
        .iter()
        .filter_map(|(_, up)| match up {
            Up::MergeRequest { id, .. } => Some(*id),
            _ => None,
        })
        .next_back()
        .expect("second merge request");
    w.down(ep(1), Down::MergeDenied(req3));
    w.run_for(Duration::from_secs(1));
    assert!(
        kinds_seen(&w, ep(3)).contains("MERGE_DENIED"),
        "MERGE_DENIED upcall (Table 2): {:?}",
        kinds_seen(&w, ep(3))
    );
    // Let ep3 in after all (auto path next round, granted this time).
    w.down(ep(3), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_millis(300));
    let req3b = w
        .upcalls(ep(1))
        .iter()
        .filter_map(|(_, up)| match up {
            Up::MergeRequest { id, .. } => Some(*id),
            _ => None,
        })
        .next_back()
        .unwrap();
    w.down(ep(1), Down::MergeGranted(req3b));
    w.run_for(Duration::from_secs(1));
    assert_eq!(w.installed_views(ep(1)).last().unwrap().len(), 3);

    // Table 1 `cast` and `send`.
    w.cast_bytes(ep(1), &b"to everyone"[..]);
    let msg = w.stack(ep(1)).unwrap().new_message(&b"to ep2 only"[..]);
    w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
    w.run_for(Duration::from_secs(1));

    // Table 1 `ack` + `stable` (application-defined stability, §9):
    // acknowledge the delivered cast everywhere; STABLE upcalls report it.
    for i in 1..=3 {
        let id = w
            .upcalls(ep(i))
            .iter()
            .find_map(|(_, up)| match up {
                Up::Cast { msg, .. } => msg.meta.msg_id,
                _ => None,
            })
            .expect("delivered with stability id");
        w.down(ep(i), Down::Ack(id));
        w.down(ep(i), Down::Stable(id));
    }
    w.run_for(Duration::from_secs(1));

    // Table 1 `flush` (application-initiated) + `flush_ok`.
    w.down(ep(1), Down::Flush { failed: vec![] });
    w.down(ep(1), Down::FlushOk);
    w.run_for(Duration::from_secs(1));

    // Table 1 `view`: an application-driven view installation reaching the
    // lower layers (exercised against a bare stack to avoid fighting
    // MBRSHIP's own agreement).
    let mut bare = build_stack(ep(9), "NAK:COM", StackConfig::default()).unwrap();
    let v = horus_core::View::initial(group(), ep(9));
    let fx = bare.handle(StackInput::FromApp(Down::InstallView(v)));
    assert!(fx.is_empty(), "view downcall consumed by COM");

    // Table 1 `dump` + `focus`.
    w.down(ep(1), Down::Dump);
    w.run_for(Duration::from_millis(10));
    assert!(kinds_seen(&w, ep(1)).contains("DUMP_INFO"));
    assert!(w.stack(ep(1)).unwrap().focus("NAK").is_some());

    // Table 2 VIEW/CAST/SEND/STABLE/FLUSH/FLUSH_OK/MERGE_REQUEST seen.
    let seen1 = kinds_seen(&w, ep(1));
    for k in ["VIEW", "CAST", "STABLE", "FLUSH", "FLUSH_OK", "MERGE_REQUEST", "DUMP_INFO"] {
        assert!(seen1.contains(k), "ep1 should have seen {k}: {seen1:?}");
    }
    let seen2 = kinds_seen(&w, ep(2));
    assert!(seen2.contains("SEND"), "subset send received: {seen2:?}");

    // Table 1 `leave` → Table 2 LEAVE at survivors, EXIT at the leaver.
    w.down(ep(3), Down::Leave);
    w.run_for(Duration::from_secs(2));
    assert!(kinds_seen(&w, ep(3)).contains("EXIT"));
    assert!(kinds_seen(&w, ep(1)).contains("LEAVE"));

    // Table 1 `destroy` → Table 2 DESTROY.
    w.down(ep(2), Down::Destroy);
    w.run_for(Duration::from_millis(100));
    assert!(kinds_seen(&w, ep(2)).contains("DESTROY"));
}

#[test]
fn problem_and_lost_message_upcalls_surface() {
    // PROBLEM: a member goes silent.  LOST_MESSAGE: the NAK layer's
    // placeholder (driven via a tiny retransmission buffer + partition).
    let mut w = SimWorld::new(2, NetConfig::reliable());
    for i in 1..=2 {
        let s = build_stack(ep(i), "NAK(buffer=2,fail_timeout=120):COM", StackConfig::default())
            .unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    let v = horus_core::View::initial(group(), ep(1)).with_joined(&[ep(2)]);
    for i in 1..=2 {
        w.down(ep(i), Down::InstallView(v.clone()));
    }
    w.partition_at(SimTime::from_millis(1), &[&[ep(1)], &[ep(2)]]);
    for k in 0..10u8 {
        w.cast_bytes_at(SimTime::from_millis(2 + k as u64), ep(1), vec![k]);
    }
    w.heal_at(SimTime::from_millis(400));
    w.run_for(Duration::from_secs(3));
    let kinds = kinds_seen(&w, ep(2));
    assert!(kinds.contains("LOST_MESSAGE"), "{kinds:?}");
    // During the partition, silence raised PROBLEM on both sides.
    assert!(kinds.contains("PROBLEM") || kinds_seen(&w, ep(1)).contains("PROBLEM"));
}

#[test]
fn system_error_upcall_reachable() {
    // Casting before joining a group is a state error the stack reports.
    let mut w = SimWorld::new(3, NetConfig::reliable());
    let s = build_stack(ep(1), VSYNC, StackConfig::default()).unwrap();
    w.add_endpoint(s);
    w.cast_bytes(ep(1), &b"too early"[..]);
    w.run_for(Duration::from_millis(50));
    assert!(kinds_seen(&w, ep(1)).contains("SYSTEM_ERROR"));
}
