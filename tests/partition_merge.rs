//! E17 — §9's partitioning models: extended virtual synchrony with
//! automatic re-merge, and the Isis-style primary partition.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use horus_sim::check_virtual_synchrony;
use std::time::Duration;

const AUTO: &str = "MERGE(contacts=1,period=50):MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
const PRIMARY: &str =
    "MERGE(contacts=1,period=50):MBRSHIP(primary=true):FRAG:NAK:COM(promiscuous=true)";

fn auto_world(n: u64, seed: u64, desc: &str) -> SimWorld {
    let mut w = SimWorld::new(seed, NetConfig::reliable());
    for i in 1..=n {
        let s = build_stack(ep(i), desc, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    w.run_for(Duration::from_secs(4));
    for i in 1..=n {
        assert_eq!(
            w.installed_views(ep(i)).last().unwrap().len(),
            n as usize,
            "ep{i} auto-assembled"
        );
    }
    w
}

#[test]
fn both_sides_progress_and_remerge() {
    let mut w = auto_world(4, 1, AUTO);
    let t = w.now();
    w.partition_at(t, &[&[ep(1), ep(2)], &[ep(3), ep(4)]]);
    w.run_for(Duration::from_secs(2));
    // Extended model: both sides installed their own 2-member views.
    assert_eq!(w.installed_views(ep(1)).last().unwrap().len(), 2);
    assert_eq!(w.installed_views(ep(3)).last().unwrap().len(), 2);
    // Both sides deliver traffic within their partitions.
    w.cast_bytes(ep(2), &b"A side"[..]);
    w.cast_bytes(ep(4), &b"B side"[..]);
    w.run_for(Duration::from_secs(1));
    assert!(w.delivered_casts(ep(1)).iter().any(|(_, b, _)| &b[..] == b"A side"));
    assert!(w.delivered_casts(ep(3)).iter().any(|(_, b, _)| &b[..] == b"B side"));
    // Healing re-merges automatically through the MERGE layer.
    let t = w.now();
    w.heal_at(t);
    w.run_for(Duration::from_secs(5));
    for i in 1..=4 {
        assert_eq!(w.installed_views(ep(i)).last().unwrap().len(), 4, "ep{i} re-merged");
    }
    // Post-merge traffic flows across the former boundary.
    w.cast_bytes(ep(1), &b"reunited"[..]);
    w.run_for(Duration::from_secs(1));
    for i in 1..=4 {
        assert!(w.delivered_casts(ep(i)).iter().any(|(_, b, _)| &b[..] == b"reunited"), "ep{i}");
    }
    assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
}

#[test]
fn repeated_partition_cycles_stay_consistent() {
    let mut w = auto_world(4, 2, AUTO);
    for cycle in 0..3 {
        let t = w.now();
        w.partition_at(t, &[&[ep(1), ep(3)], &[ep(2), ep(4)]]);
        w.cast_bytes_at(t + Duration::from_millis(600), ep(1), format!("c{cycle}a").into_bytes());
        w.cast_bytes_at(t + Duration::from_millis(600), ep(2), format!("c{cycle}b").into_bytes());
        w.heal_at(t + Duration::from_secs(2));
        w.run_for(Duration::from_secs(7));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "cycle {cycle} ep{i} healed"
            );
        }
    }
    let violations = check_virtual_synchrony(&logs(&w, 4));
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn primary_partition_blocks_minority_and_majority_continues() {
    let mut w = auto_world(5, 3, PRIMARY);
    let t = w.now();
    w.partition_at(t, &[&[ep(1), ep(2), ep(3)], &[ep(4), ep(5)]]);
    w.run_for(Duration::from_secs(4));
    // Majority: progress into a 3-member view; traffic still flows.
    for i in 1..=3 {
        assert_eq!(w.installed_views(ep(i)).last().unwrap().len(), 3, "ep{i}");
    }
    w.cast_bytes(ep(1), &b"primary still serving"[..]);
    w.run_for(Duration::from_secs(1));
    assert!(w.delivered_casts(ep(3)).iter().any(|(_, b, _)| &b[..] == b"primary still serving"));
    // Minority: blocked with a SYSTEM_ERROR, views unchanged.
    for i in 4..=5 {
        let blocked = w
            .upcalls(ep(i))
            .iter()
            .any(|(_, up)| matches!(up, Up::SystemError { reason } if reason.contains("primary")));
        assert!(blocked, "ep{i} must report the lost primary partition");
        assert_eq!(
            w.installed_views(ep(i)).last().unwrap().len(),
            5,
            "ep{i} must not install a minority view"
        );
    }
}

#[test]
fn merge_of_unequal_partitions_preserves_seniority() {
    let mut w = auto_world(4, 4, AUTO);
    let t = w.now();
    // 3-1 split; the singleton is the junior member.
    w.partition_at(t, &[&[ep(1), ep(2), ep(3)], &[ep(4)]]);
    w.run_for(Duration::from_secs(2));
    let t = w.now();
    w.heal_at(t);
    w.run_for(Duration::from_secs(5));
    let v = w.installed_views(ep(1)).last().unwrap().clone();
    assert_eq!(v.len(), 4);
    // The original seniors keep their rank after the merge.
    assert_eq!(v.members()[0], ep(1), "oldest member still ranks first: {v}");
}
