//! §5/§9 — "members excluded from the view may still be alive.  When
//! communication is restored, views may be merged using the merge
//! downcall": the full exclusion → singleton → merge-back lifecycle, and
//! the same suite in the 1995 aligned-header mode.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload};
use horus_net::NetConfig;
use horus_sim::{check_total_order, check_virtual_synchrony};
use std::time::Duration;

#[test]
fn falsely_excluded_member_merges_back() {
    let mut w = joined_world(3, 1, NetConfig::reliable(), VSYNC);
    // The external failure detector (§5) falsely accuses ep3.
    let t = w.now();
    w.down_at(t + Duration::from_millis(5), ep(1), Down::Suspect { member: ep(3) });
    w.run_for(Duration::from_secs(2));
    // ep3 is excluded but alive, fell back to a singleton view...
    assert_eq!(w.installed_views(ep(3)).last().unwrap().members(), &[ep(3)]);
    assert_eq!(w.installed_views(ep(1)).last().unwrap().len(), 2);
    // ...and merges back in.
    w.down(ep(3), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_secs(2));
    for i in 1..=3 {
        assert_eq!(w.installed_views(ep(i)).last().unwrap().len(), 3, "ep{i} reunited");
    }
    // Traffic flows again to everyone, and the history is consistent.
    w.cast_bytes(ep(3), &b"i am back"[..]);
    w.run_for(Duration::from_secs(1));
    for i in 1..=3 {
        assert!(w.delivered_casts(ep(i)).iter().any(|(_, b, _)| &b[..] == b"i am back"));
    }
    assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty());
}

#[test]
fn seniority_resets_for_the_rejoiner() {
    // The rejoiner was the oldest member; after exclusion + re-merge it is
    // the *youngest* (a rejoin is a new incarnation, not a resurrection).
    let mut w = joined_world(3, 2, NetConfig::reliable(), VSYNC);
    let t = w.now();
    // Falsely accuse ep1 (the senior member) at both survivors.
    w.down_at(t + Duration::from_millis(5), ep(2), Down::Suspect { member: ep(1) });
    w.run_for(Duration::from_secs(2));
    assert_eq!(w.installed_views(ep(2)).last().unwrap().members(), &[ep(2), ep(3)]);
    // ep1 merges back toward the new coordinator.
    w.down(ep(1), Down::Merge { contact: ep(2) });
    w.run_for(Duration::from_secs(2));
    let v = w.installed_views(ep(2)).last().unwrap().clone();
    assert_eq!(v.len(), 3);
    assert_eq!(v.members()[0], ep(2), "ep2 is now the senior member: {v}");
    assert_eq!(*v.members().last().unwrap(), ep(1), "ep1 rejoined as junior: {v}");
}

#[test]
fn aligned_headers_full_protocol_suite() {
    // The 1995 aligned push/pop layout, end to end: group formation,
    // total-ordered traffic, a crash, and the invariants — nothing about
    // the protocols may depend on the compact layout.
    let config = StackConfig { mode: HeaderMode::Aligned, ..StackConfig::default() };
    let mut w = SimWorld::new(3, NetConfig::lossy(0.08));
    for i in 1..=3 {
        let s = build_stack(ep(i), CANONICAL, config.clone()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=3 {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    let t = w.now();
    let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 24);
    wl.schedule(&mut w, t + Duration::from_millis(1));
    w.crash_at(t + Duration::from_millis(12), ep(2));
    w.run_for(Duration::from_secs(5));
    let logs = logs(&w, 3);
    assert!(check_virtual_synchrony(&logs).is_empty());
    assert!(check_total_order(&logs).is_empty());
    let survivors_view = w.installed_views(ep(1)).last().unwrap().clone();
    assert_eq!(survivors_view.members(), &[ep(1), ep(3)]);
}
