//! Shared helpers for the integration tests.
#![allow(dead_code)]

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use horus_sim::DeliveryLog;
use std::time::Duration;

pub fn ep(i: u64) -> EndpointAddr {
    EndpointAddr::new(i)
}

pub fn group() -> GroupAddr {
    GroupAddr::new(1)
}

/// Builds a world of `n` members all running `stack_desc`, merges them
/// toward ep(1), and runs until the full view forms.
///
/// # Panics
///
/// Panics if the group does not assemble.
pub fn joined_world(n: u64, seed: u64, net: NetConfig, stack_desc: &str) -> SimWorld {
    let mut w = SimWorld::new(seed, net);
    for i in 1..=n {
        let s = build_stack(ep(i), stack_desc, StackConfig::default()).expect("stack builds");
        w.add_endpoint(s);
        w.join(ep(i), GroupAddr::new(1));
    }
    for i in 2..=n {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    for i in 1..=n {
        let views = w.installed_views(ep(i));
        let last = views.last().unwrap_or_else(|| panic!("ep{i} has no view"));
        assert_eq!(last.len(), n as usize, "ep{i} must see the full {n}-member view");
    }
    w
}

/// Delivery logs of all still-alive members.
pub fn logs(w: &SimWorld, n: u64) -> Vec<DeliveryLog> {
    (1..=n)
        .filter(|&i| w.is_alive(ep(i)))
        .map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i))))
        .collect()
}

/// The canonical §7 stack, promiscuous COM for merge traffic.
pub const CANONICAL: &str = "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
/// Virtual synchrony without ordering above it.
pub const VSYNC: &str = "MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
