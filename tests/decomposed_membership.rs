//! Randomized hardening of the BMS/VSS/FLUSH reference decomposition
//! (§8): the composed reference layers must give the same virtual-synchrony
//! guarantees as the production MBRSHIP, under random crashes and loss —
//! plus stress cases for membership churn generally.

mod common;

use common::*;
use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::{SimWorld, Workload, WorkloadKind};
use horus_net::NetConfig;
use horus_sim::check_virtual_synchrony;
use proptest::prelude::*;
use std::time::Duration;

const DECOMPOSED: &str = "FLUSH:VSS:BMS:FRAG:NAK:COM(promiscuous=true)";

fn run_decomposed(
    seed: u64,
    n: u64,
    loss_pct: u8,
    crash: Option<u64>,
) -> Result<(), TestCaseError> {
    let net = if loss_pct == 0 {
        NetConfig::reliable()
    } else {
        NetConfig::lossy(loss_pct as f64 / 100.0)
    };
    let mut w = SimWorld::new(seed, net);
    for i in 1..=n {
        let s = build_stack(ep(i), DECOMPOSED, StackConfig::default()).unwrap();
        w.add_endpoint(s);
        w.join(ep(i), group());
    }
    for i in 2..=n {
        w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
    }
    w.run_for(Duration::from_secs(3));
    for i in 1..=n {
        prop_assert_eq!(
            w.installed_views(ep(i)).last().expect("view").len(),
            n as usize,
            "seed {} ep{} join",
            seed,
            i
        );
    }
    let t = w.now();
    let wl = Workload {
        kind: WorkloadKind::RoundRobin,
        senders: (1..=n).map(ep).collect(),
        slots: 20,
        interval: Duration::from_millis(1),
        payload: 24,
    };
    wl.schedule(&mut w, t + Duration::from_millis(1));
    if let Some(v) = crash {
        let victim = 2 + (v % (n - 1)); // never the senior member here
        w.crash_at(t + Duration::from_millis(8), ep(victim));
    }
    w.run_for(Duration::from_secs(6));
    let logs = logs(&w, n);
    let violations = check_virtual_synchrony(&logs);
    prop_assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    // Survivors converge on one view containing exactly the live members
    // (seniority order depends on which join round won, so compare sets).
    let alive: Vec<EndpointAddr> = (1..=n).filter(|&i| w.is_alive(ep(i))).map(ep).collect();
    let reference = w.installed_views(alive[0]).last().unwrap().clone();
    let mut members = reference.members().to_vec();
    members.sort();
    prop_assert_eq!(&members[..], &alive[..], "seed {} membership set", seed);
    for &a in &alive[1..] {
        let v = w.installed_views(a).last().unwrap().clone();
        prop_assert_eq!(&v, &reference, "seed {} {} final view agreement", seed, a);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn decomposed_membership_is_virtually_synchronous(
        seed in 0u64..10_000,
        n in 2u64..=4,
        loss in prop_oneof![Just(0u8), Just(6u8)],
        crash in proptest::option::of(0u64..100),
    ) {
        run_decomposed(seed, n, loss, if n > 2 { crash } else { None })?;
    }
}

#[test]
fn simultaneous_merges_converge() {
    // All newcomers fire their merge requests at the *same instant*: the
    // coordinator must queue/fold the joiner views without losing any.
    for seed in 1..=4 {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=5 {
            let s = build_stack(ep(i), VSYNC, StackConfig::default()).unwrap();
            w.add_endpoint(s);
            w.join(ep(i), group());
        }
        for i in 2..=5 {
            w.down_at(SimTime::from_millis(3), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(4));
        for i in 1..=5 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                5,
                "seed {seed} ep{i}: all simultaneous joiners admitted"
            );
        }
        assert!(check_virtual_synchrony(&logs(&w, 5)).is_empty(), "seed {seed}");
    }
}

#[test]
fn churn_join_leave_join_stays_consistent() {
    let mut w = joined_world(4, 11, NetConfig::reliable(), VSYNC);
    // ep4 leaves, casts flow, ep4's address never returns but a NEW member
    // ep5 arrives.
    let t = w.now();
    w.down_at(t + Duration::from_millis(5), ep(4), Down::Leave);
    w.cast_bytes_at(t + Duration::from_millis(10), ep(1), &b"during churn"[..]);
    w.run_for(Duration::from_secs(2));
    let s5 = build_stack(ep(5), VSYNC, StackConfig::default()).unwrap();
    w.add_endpoint(s5);
    w.join(ep(5), group());
    let t = w.now();
    w.down_at(t + Duration::from_millis(10), ep(5), Down::Merge { contact: ep(1) });
    w.run_for(Duration::from_secs(2));
    for i in [1u64, 2, 3, 5] {
        let v = w.installed_views(ep(i)).last().unwrap().clone();
        assert_eq!(v.members(), &[ep(1), ep(2), ep(3), ep(5)], "ep{i}: {v}");
    }
    assert!(check_virtual_synchrony(&logs(&w, 5)).is_empty());
}
