//! Minimal offline stand-in for `parking_lot`: a `Mutex` whose `lock()`
//! returns the guard directly (no poisoning), backed by `std::sync::Mutex`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.  A panic in another
    /// thread while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
