//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the harness API (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`) so the workspace's benches compile and run without
//! network access.  Measurement is a plain wall-clock mean over
//! auto-calibrated iteration batches — fine for the relative comparisons
//! the EXPERIMENTS.md tables make, with none of upstream's statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Units for reporting throughput next to the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: grow the batch until it runs long enough to time.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= (1 << 24) {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    // A few measurement batches; report the minimum (least noisy).
    let mut best = per_iter;
    for _ in 0..3 {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        best = best.min(b.elapsed.as_secs_f64() / iters as f64);
    }
    let ns = best * 1e9;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.0} elem/s)", n as f64 / best),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / best / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{label:<50} time: [{ns:>12.1} ns/iter]{rate}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used for rate reporting on subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; results print as they run).
    pub fn finish(self) {}
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { name, throughput: None, _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, None, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        g.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
