//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's tests use: the
//! [`strategy::Strategy`] trait (random generation only — **no shrinking**),
//! integer-range and tuple strategies, `collection::vec`, `option::of`,
//! `bool::ANY`, `sample::Index`, `any::<T>()`, `Just`, `prop_oneof!`, the
//! `proptest!` test macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Test cases are generated from a seed derived deterministically from the
//! test's module path and name, so failures reproduce across runs.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    /// A source of random values of one type.  Unlike upstream there is no
    /// value tree and no shrinking: `pick` draws one sample.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Draws one sample.
        fn pick(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            (**self).pick(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            (**self).pick(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn pick(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.pick(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].pick(rng)
        }
    }

    /// Boxes a strategy, erasing its type (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy backed by a closure over the rng.
    pub struct Func<T, F: Fn(&mut StdRng) -> T>(pub F);

    impl<T, F: Fn(&mut StdRng) -> T> Strategy for Func<T, F> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Full-range integer / bool sampling used by `any::<T>()`.
    pub struct AnyInt<T>(pub std::marker::PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyInt<bool> {
        type Value = bool;
        fn pick(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for AnyInt<crate::sample::Index> {
        type Value = crate::sample::Index;
        fn pick(&self, rng: &mut StdRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyInt;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: crate::strategy::Strategy<Value = Self>;
        /// That canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;
                fn arbitrary() -> AnyInt<$t> {
                    AnyInt(PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, crate::sample::Index
    );

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `elem` and whose length lies in
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`: `None` half the time.
    pub struct OptionStrategy<S>(S);

    /// `Some` of a sample from `inner` with probability 1/2, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.pick(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// The strategy producing either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn pick(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    /// An opaque index into any slice, scaled by the slice's length at
    /// lookup time (mirrors `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// This index projected onto `slice`.  Panics on an empty slice,
        /// as upstream does.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            assert!(!slice.is_empty(), "Index::get on empty slice");
            &slice[(self.0 % slice.len() as u64) as usize]
        }

        /// This index projected onto a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index with len 0");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Why a test case failed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
        /// The case asked to be rejected/skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration; construct via functional-record-update over
    /// `default()`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
        }
    }

    /// Deterministic per-test rng: seeded by FNV-1a of the test's full
    /// path, so each test sees a stable but distinct case sequence.
    pub fn rng_for(test_path: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a proptest case, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

/// Asserts two values differ inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{}: {:?} == {:?}", format!($($fmt)*), a, b);
    }};
}

/// Uniform random choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Declares property-based tests.  Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that runs `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;) => {};
    (@impl $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            reason
                        );
                    }
                }
            }
        }
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds; tuples and collections compose.
        #[test]
        fn generated_values_respect_strategies(
            x in 1u64..10,
            (a, b) in (0u8..4, 0u8..=3),
            v in crate::collection::vec(any::<u8>(), 0..5),
            flag in crate::bool::ANY,
            maybe in crate::option::of(5u32..6),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4 && b <= 3);
            prop_assert!(v.len() < 5);
            prop_assert!(flag || !flag);
            if let Some(m) = maybe {
                prop_assert_eq!(m, 5);
            }
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn index_projects_into_slices() {
        let items = [10, 20, 30];
        let ix = crate::sample::Index(7);
        assert_eq!(*ix.get(&items), 20);
        assert_eq!(ix.index(3), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x::y");
        let mut b = crate::test_runner::rng_for("x::y");
        let s = 0u64..1000;
        use crate::strategy::Strategy;
        for _ in 0..10 {
            assert_eq!(s.pick(&mut a), s.pick(&mut b));
        }
    }
}
