//! Minimal offline stand-in for the `crossbeam` crate: just
//! `crossbeam::channel::{unbounded, Sender, Receiver}` with multi-producer
//! multi-consumer semantics over a mutex-protected queue.  Disconnection
//! semantics mirror upstream: `send` fails when every `Receiver` is gone,
//! `recv` fails when the queue is empty and every `Sender` is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        cond: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers have dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            cond: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Enqueues `item`; fails if every receiver has dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(item));
            }
            st.items.push_back(item);
            drop(st);
            self.inner.cond.notify_one();
            Ok(())
        }

        /// Enqueues every item of `items` under one lock acquisition and
        /// one wake-up; returns how many were enqueued (`Err` with the
        /// count `0` if every receiver has dropped, consuming the items).
        ///
        /// Not part of upstream crossbeam's API, but the batched-dispatch
        /// executors need a way to publish a burst without paying the
        /// mutex/condvar tax per element.
        pub fn send_iter(&self, items: impl IntoIterator<Item = T>) -> Result<usize, SendError<()>> {
            let mut st = self.inner.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(()));
            }
            let before = st.items.len();
            st.items.extend(items);
            let n = st.items.len() - before;
            drop(st);
            if n > 0 {
                self.inner.cond.notify_all();
            }
            Ok(n)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives; fails once empty and all senders
        /// have dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cond.wait(st).unwrap();
            }
        }

        /// Blocks until an item arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.inner.queue.lock().unwrap();
            loop {
                if let Some(item) = st.items.pop_front() {
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.inner.cond.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.queue.lock().unwrap();
            match st.items.pop_front() {
                Some(item) => Ok(item),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(5)), Ok(42));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_iter_batches_under_one_lock() {
            let (tx, rx) = unbounded();
            assert_eq!(tx.send_iter(0..5), Ok(5));
            assert_eq!((0..5).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
            assert_eq!(tx.send_iter(std::iter::empty::<i32>()), Ok(0));
            drop(rx);
            assert_eq!(tx.send_iter(0..5), Err(SendError(())));
        }

        #[test]
        fn fifo_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn works_across_threads_and_iter_ends() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
