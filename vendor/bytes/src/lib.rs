//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the API this workspace uses: an immutable,
//! cheaply cloneable, sliceable byte buffer backed by `Arc<Vec<u8>>`, and a
//! small `BytesMut` builder.  Clones and slices share the same backing
//! allocation, which is what the zero-copy framing in `horus-core` relies
//! on (pointer identity through clone/slice is observable via `as_ptr`).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Shared storage behind a [`Bytes`] handle.
#[derive(Clone)]
enum Repr {
    /// Static memory — `from_static` never allocates.
    Static(&'static [u8]),
    /// Heap storage shared between all clones/slices.
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(s), start: 0, end: s.len() }
    }

    /// Copies `src` into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes::from(src.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing this buffer's storage (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice index starts at {begin} but ends at {end}");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes { repr: self.repr.clone(), start: self.start + begin, end: self.start + end }
    }

    /// Splits off the bytes after `at`, leaving `self` with the prefix.
    /// Both halves share the original storage.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds: {at} > {}", self.len());
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Splits off the first `at` bytes and returns them, leaving `self`
    /// with the suffix.  Both halves share the original storage.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at} > {}", self.len());
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// The contents as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts to immutable [`Bytes`], transferring the allocation.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr());
        let s = b.slice(1..3);
        assert_eq!(s.as_ref(), &[2, 3]);
        assert_eq!(s.as_ref().as_ptr(), unsafe { b.as_ref().as_ptr().add(1) });
    }

    #[test]
    fn split_shares_storage() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(b.as_ref(), &[3]);
        assert_eq!(tail.as_ref(), &[4, 5]);
    }

    #[test]
    fn freeze_transfers_allocation() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"abc");
        let p = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ref().as_ptr(), p);
        assert_eq!(&b[..], b"abc");
    }

    #[test]
    fn equality_and_static() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, Bytes::from("hello"));
        assert_eq!(&b[..], b"hello");
        assert!(Bytes::new().is_empty());
    }
}
