//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `RngCore`, `SeedableRng` with
//! `seed_from_u64`, the `Rng` extension trait with `gen_range`/`gen_bool`,
//! and `rngs::StdRng` (a deterministic xoshiro256++ generator seeded via
//! SplitMix64).  Determinism is the point: every simulation run is
//! reproducible from its seed, which the real `rand` also guarantees for a
//! fixed version.

/// Core random-number generation interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (expanded via
    /// SplitMix64, matching upstream's recommendation).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniformly distributed sample.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

fn uniform_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    // Rejection sampling to avoid modulo bias; span == 0 means the full
    // 2^64 range.
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 == full u64 range
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded through
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(3u32..=3), 3);
    }

    #[test]
    fn gen_bool_edges_and_rough_frequency() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
