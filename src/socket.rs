//! The UNIX-socket embedding of §1/§11.
//!
//! "When Horus is used through its socket interface, the top-most module
//! converts socket `sendto` and `recvfrom` operations into the Horus
//! paradigm" — "a UNIX sendto operation will be mapped to a multicast, and
//! a recvfrom will receive the next incoming message".
//!
//! [`GroupSocket`] is that top-most module: it runs a full protocol stack
//! on the threaded executor (real time, in-process transport) and offers a
//! blocking datagram-socket API.  The application never sees the HCPI —
//! the point of the embedding is exactly that Horus "can be hidden behind
//! standard abstractions".

use bytes::Bytes;
use horus_core::prelude::*;
use horus_layers::registry::build_stack;
use horus_net::LoopbackNet;
use horus_sim::threaded::{DispatchModel, ThreadedEndpoint};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A datagram-socket-flavoured facade over a Horus protocol stack.
///
/// ```
/// use horus::socket::GroupSocket;
/// use horus_core::{EndpointAddr, GroupAddr};
/// use horus_net::LoopbackNet;
/// use std::time::Duration;
///
/// let net = LoopbackNet::new();
/// let g = GroupAddr::new(1);
/// let mut a = GroupSocket::bind(&net, EndpointAddr::new(1), "NAK:COM")?;
/// let mut b = GroupSocket::bind(&net, EndpointAddr::new(2), "NAK:COM")?;
/// a.join(g);
/// b.join(g);
/// std::thread::sleep(Duration::from_millis(20));
/// a.sendto(&b"hello"[..]);
/// let (from, body) = b.recvfrom(Duration::from_secs(5)).expect("delivery");
/// assert_eq!(from, EndpointAddr::new(1));
/// assert_eq!(&body[..], b"hello");
/// # Ok::<(), horus_core::HorusError>(())
/// ```
pub struct GroupSocket {
    ep: ThreadedEndpoint,
    inbox: VecDeque<(EndpointAddr, Bytes)>,
    /// Non-CAST upcalls observed (views, problems, ...), for curious
    /// applications; capped to the most recent 1024.
    events: VecDeque<Up>,
}

impl GroupSocket {
    /// Creates an endpoint with the given stack description and binds it
    /// to the transport.
    ///
    /// # Errors
    ///
    /// Fails when the stack description does not parse or build.
    pub fn bind(net: &LoopbackNet, addr: EndpointAddr, stack: &str) -> Result<Self, HorusError> {
        let stack = build_stack(addr, stack, StackConfig::default())?;
        let ep = ThreadedEndpoint::spawn(stack, net.clone(), DispatchModel::EventQueue);
        Ok(GroupSocket { ep, inbox: VecDeque::new(), events: VecDeque::new() })
    }

    /// The socket's own address.
    pub fn local_addr(&self) -> EndpointAddr {
        self.ep.addr()
    }

    /// Joins a process group (the `bind`/`connect` analogue).
    pub fn join(&self, group: GroupAddr) {
        self.ep.down(Down::Join { group });
    }

    /// `sendto`: multicasts a payload to the group.
    pub fn sendto(&self, body: impl Into<Bytes>) {
        self.ep.cast_bytes(body.into());
    }

    /// Asks the view containing `contact` to merge with ours (only
    /// meaningful when the stack contains a membership layer).
    pub fn merge(&self, contact: EndpointAddr) {
        self.ep.down(Down::Merge { contact });
    }

    /// The most recent view observed, if the stack runs membership.
    pub fn current_view(&mut self) -> Option<View> {
        self.drain();
        self.events.iter().rev().find_map(|up| match up {
            Up::View(v) => Some(v.clone()),
            _ => None,
        })
    }

    /// Blocks until the view reaches `n` members or `timeout` elapses.
    pub fn wait_for_view(&mut self, n: usize, timeout: Duration) -> Option<View> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.current_view() {
                if v.len() >= n {
                    return Some(v);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// `recvfrom`: blocks (up to `timeout`) for the next incoming
    /// multicast, returning the sender and payload.
    pub fn recvfrom(&mut self, timeout: Duration) -> Option<(EndpointAddr, Bytes)> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain();
            if let Some(item) = self.inbox.pop_front() {
                return Some(item);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Non-blocking `recvfrom`.
    pub fn try_recvfrom(&mut self) -> Option<(EndpointAddr, Bytes)> {
        self.drain();
        self.inbox.pop_front()
    }

    /// Drains non-data events (view changes etc.) observed so far.
    pub fn take_events(&mut self) -> Vec<Up> {
        self.drain();
        self.events.drain(..).collect()
    }

    /// Issues a raw HCPI downcall (for callers that outgrow the datagram
    /// metaphor without wanting to leave it entirely).
    pub fn downcall(&self, down: Down) {
        self.ep.down(down);
    }

    /// Leaves the group and shuts the stack down.
    pub fn close(mut self) {
        self.ep.down(Down::Leave);
        std::thread::sleep(Duration::from_millis(10));
        self.ep.stop();
    }

    fn drain(&mut self) {
        for up in self.ep.take_upcalls() {
            match up {
                Up::Cast { src, msg } => self.inbox.push_back((src, msg.body().clone())),
                other => {
                    self.events.push_back(other);
                    while self.events.len() > 1024 {
                        self.events.pop_front();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    #[test]
    fn sendto_recvfrom_roundtrip() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(7);
        let mut socks: Vec<GroupSocket> =
            (1..=3).map(|i| GroupSocket::bind(&net, ep(i), "CHKSUM:NAK:COM").unwrap()).collect();
        for s in &socks {
            s.join(g);
        }
        std::thread::sleep(Duration::from_millis(30));
        socks[0].sendto(&b"dgram"[..]);
        for (i, s) in socks.iter_mut().enumerate() {
            let (from, body) =
                s.recvfrom(Duration::from_secs(5)).unwrap_or_else(|| panic!("socket {i}"));
            assert_eq!(from, ep(1));
            assert_eq!(&body[..], b"dgram");
        }
        for s in socks {
            s.close();
        }
    }

    #[test]
    fn bad_stack_description_errors() {
        let net = LoopbackNet::new();
        assert!(GroupSocket::bind(&net, ep(1), "NOT_A_LAYER").is_err());
    }

    #[test]
    fn try_recvfrom_is_nonblocking() {
        let net = LoopbackNet::new();
        let mut s = GroupSocket::bind(&net, ep(9), "NAK:COM").unwrap();
        s.join(GroupAddr::new(1));
        assert!(s.try_recvfrom().is_none());
        s.close();
    }
}
