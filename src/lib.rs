//! # horus
//!
//! A from-scratch Rust reproduction of *"A Framework for Protocol
//! Composition in Horus"* (van Renesse, Birman, Friedman, Hayden, Karr —
//! PODC 1995): protocols as stackable abstract data types, the Horus
//! Common Protocol Interface, a thirty-odd-layer protocol library,
//! virtually synchronous process groups, and the Table 3/4 property
//! algebra with automatic minimal-stack construction.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`horus_core`] | endpoints, views, messages (aligned & compact headers), HCPI events, the [`horus_core::Layer`] trait, the stack runtime |
//! | [`horus_net`] | deterministic simulated network; in-process threaded transport |
//! | [`horus_layers`] | the layer library: COM, NAK, FRAG, MBRSHIP, TOTAL, CAUSAL, SAFE, STABLE, PINWHEEL, MERGE, BMS/VSS/FLUSH, reference twins, the Figure 1 utility catalogue, and the run-time [`horus_layers::registry`] |
//! | [`horus_props`] | Table 3/4 property algebra, well-formedness checking, minimal-stack planning |
//! | [`horus_sim`] | discrete-event world, virtual-synchrony invariant checkers, workloads, threaded executor |
//!
//! ## Quickstart
//!
//! ```
//! use horus::prelude::*;
//! use horus::layers::registry::build_stack;
//! use horus::sim::SimWorld;
//! use horus_net::NetConfig;
//! use std::time::Duration;
//!
//! let mut world = SimWorld::new(42, NetConfig::reliable());
//! for i in 1..=3 {
//!     let ep = EndpointAddr::new(i);
//!     let stack = build_stack(
//!         ep,
//!         "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)",
//!         StackConfig::default(),
//!     )?;
//!     world.add_endpoint(stack);
//!     world.join(ep, GroupAddr::new(1));
//! }
//! for i in 2..=3 {
//!     world.down(EndpointAddr::new(i), Down::Merge { contact: EndpointAddr::new(1) });
//! }
//! world.run_for(Duration::from_secs(2));
//! world.cast_bytes(EndpointAddr::new(1), &b"hello group"[..]);
//! world.run_for(Duration::from_millis(100));
//! assert_eq!(world.delivered_casts(EndpointAddr::new(3)).len(), 1);
//! # Ok::<(), HorusError>(())
//! ```

pub use horus_core as core;
pub use horus_layers as layers;
pub use horus_net as net;
pub use horus_props as props;
pub use horus_sim as sim;
pub use horus_trace as trace;

pub mod socket;

/// One-stop imports for applications.
pub mod prelude {
    pub use horus_core::prelude::*;
}
