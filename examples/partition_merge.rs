//! Extended virtual synchrony and automatic view merging (§9, MERGE).
//!
//! The network partitions; both sides keep making progress in their own
//! views (the Transis/Totem-style extended model); the partitions heal;
//! the MERGE layer notices and re-unites the group without any
//! application involvement.  Then the same scenario runs in the
//! Isis-style primary-partition mode, where the minority blocks instead.
//!
//! ```text
//! cargo run --example partition_merge
//! ```

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::time::Duration;

fn eps(n: u64) -> Vec<EndpointAddr> {
    (1..=n).map(EndpointAddr::new).collect()
}

fn form_group(world: &mut SimWorld, members: &[EndpointAddr], stack: &str) {
    for &ep in members {
        let s = build_stack(ep, stack, StackConfig::default()).expect("stack builds");
        world.add_endpoint(s);
        world.join(ep, GroupAddr::new(1));
    }
    world.run_for(Duration::from_secs(3));
}

fn main() {
    println!("=== extended virtual synchrony with automatic re-merge ===");
    let members = eps(4);
    let mut world = SimWorld::new(5, NetConfig::reliable());
    // MERGE probes contact ep1 automatically: no manual merge calls at
    // all, group assembly and healing are autonomous.
    form_group(
        &mut world,
        &members,
        "MERGE(contacts=1,period=50):MBRSHIP:FRAG:NAK:COM(promiscuous=true)",
    );
    println!("auto-assembled: {}", world.installed_views(members[0]).last().unwrap());

    let t = world.now();
    world.partition_at(t, &[&[members[0], members[1]], &[members[2], members[3]]]);
    world.run_for(Duration::from_secs(2));
    println!("\nafter partition:");
    println!("  side A: {}", world.installed_views(members[0]).last().unwrap());
    println!("  side B: {}", world.installed_views(members[2]).last().unwrap());
    // Both sides still deliver traffic in their own views.
    world.cast_bytes(members[0], &b"A-side progress"[..]);
    world.cast_bytes(members[2], &b"B-side progress"[..]);
    world.run_for(Duration::from_secs(1));
    assert!(world.delivered_casts(members[1]).iter().any(|(_, b, _)| &b[..] == b"A-side progress"));
    assert!(world.delivered_casts(members[3]).iter().any(|(_, b, _)| &b[..] == b"B-side progress"));
    println!("  both sides made progress (extended model)");

    let t = world.now();
    world.heal_at(t);
    world.run_for(Duration::from_secs(4));
    let healed = world.installed_views(members[0]).last().unwrap().clone();
    println!("\nafter healing, MERGE re-united the group: {healed}");
    assert_eq!(healed.len(), 4);

    println!("\n=== same crash in primary-partition (Isis) mode ===");
    let mut world = SimWorld::new(6, NetConfig::reliable());
    form_group(
        &mut world,
        &members,
        "MERGE(contacts=1,period=50):MBRSHIP(primary=true):FRAG:NAK:COM(promiscuous=true)",
    );
    let t = world.now();
    world.partition_at(t, &[&[members[0], members[1], members[2]], &[members[3]]]);
    world.run_for(Duration::from_secs(3));
    println!("  majority side: {}", world.installed_views(members[0]).last().unwrap());
    let minority_blocked = world
        .upcalls(members[3])
        .iter()
        .any(|(_, up)| matches!(up, Up::SystemError { reason } if reason.contains("primary")));
    println!(
        "  minority member {}: {}",
        members[3],
        if minority_blocked { "blocked (lost the primary partition)" } else { "??" }
    );
    assert!(minority_blocked);
    println!("\nboth partitioning models of §9 demonstrated ✓");
}
