//! The §6 property methodology, end to end: print the reconstructed
//! Table 3, verify the §7 derivation, and let the planner build minimal
//! stacks for a range of application requirements — including one it must
//! refuse, the paper's real-time-admission analogy.
//!
//! ```text
//! cargo run --example stack_planner
//! ```

use horus::props::{derive_stack, plan_minimal_stack, Prop, PropSet};
use horus_props::check::section7;
use horus_props::matrix::{layer_meta, render_matrix};

fn plan_and_print(label: &str, required: PropSet, network: PropSet) {
    print!("{label:<46} -> ");
    match plan_minimal_stack(required, network) {
        Ok(stack) if stack.is_empty() => println!("(the bare network suffices)"),
        Ok(stack) => {
            let cost: u32 = stack.iter().map(|n| layer_meta(n).unwrap().cost).sum();
            let provided = derive_stack(&stack, network).expect("planned stacks are well-formed");
            println!("{} (cost {cost}, provides {provided})", stack.join(":"));
        }
        Err(e) => println!("IMPOSSIBLE: {e}"),
    }
}

fn main() {
    println!("Reconstructed Table 3 (requires / provides / masks):\n");
    println!("{}", render_matrix());

    println!("Table 4 properties:");
    for p in Prop::ALL {
        println!("  {p:<4} {}", p.description());
    }

    // The paper's one fully-specified derivation.
    let (stack, network, expected) = section7();
    let got = derive_stack(stack, network).expect("canonical stack well-formed");
    println!("\n§7 check: {} over {network}", stack.join(":"));
    println!("  paper says: {expected}");
    println!("  we derive:  {got}");
    assert_eq!(got, expected);
    println!("  exact match ✓");

    println!("\nMinimal stacks planned for application requirements over a P1 network:\n");
    let p1 = PropSet::of(&[Prop::BestEffort]);
    plan_and_print("reliable FIFO multicast", PropSet::of(&[Prop::FifoMulticast]), p1);
    plan_and_print("large messages", PropSet::of(&[Prop::LargeMessages]), p1);
    plan_and_print("virtual synchrony", PropSet::of(&[Prop::VirtualSync]), p1);
    plan_and_print("total order", PropSet::of(&[Prop::TotalOrder]), p1);
    plan_and_print("causal order", PropSet::of(&[Prop::Causal]), p1);
    plan_and_print("safe delivery", PropSet::of(&[Prop::Safe]), p1);
    plan_and_print(
        "total order + stability + auto-merge",
        PropSet::of(&[Prop::TotalOrder, Prop::Stability, Prop::AutoMerge]),
        p1,
    );
    plan_and_print("ALL sixteen properties at once", PropSet::ALL, p1);
    plan_and_print(
        "anything over a dead network",
        PropSet::of(&[Prop::FifoUnicast]),
        PropSet::EMPTY,
    );
    println!(
        "\n\"Rather than looking at this as stacking protocols on top of each other, a \
         different\ninterpretation is that Horus actually builds a single protocol for the \
         particular\napplication on the fly.\"  — §6"
    );
}
