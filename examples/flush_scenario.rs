//! Figure 2 of the paper, replayed exactly.
//!
//! "This picture shows four processes: A, B, C, and D.  D crashes right
//! after sending a message M, and only C received a copy.  After the crash
//! is detected, A starts the flush protocol by multicasting to B and C.
//! C sends a copy of M to A, which forwards it to B.  After A has received
//! replies from everyone, it installs a new view by multicasting."
//!
//! ```text
//! cargo run --example flush_scenario
//! ```

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::time::Duration;

fn main() -> Result<(), HorusError> {
    let group = GroupAddr::new(1);
    let (a, b, c, d) =
        (EndpointAddr::new(1), EndpointAddr::new(2), EndpointAddr::new(3), EndpointAddr::new(4));
    let mut world = SimWorld::new(7, NetConfig::reliable());
    for &ep in &[a, b, c, d] {
        let stack =
            build_stack(ep, "MBRSHIP:FRAG:NAK:COM(promiscuous=true)", StackConfig::default())?;
        world.add_endpoint(stack);
        world.join(ep, group);
    }
    for &ep in &[b, c, d] {
        world.down(ep, Down::Merge { contact: a });
    }
    world.run_for(Duration::from_secs(2));
    println!("group formed: {}", world.installed_views(a).last().expect("view"));

    // The Figure 2 moment: isolate D with C (so only C gets M), let D
    // cast M, crash D, heal.
    let t = world.now();
    println!("\n[t+1ms]  network hiccup: D can reach only C");
    world.partition_at(t + Duration::from_millis(1), &[&[a, b], &[c, d]]);
    println!("[t+2ms]  D casts M");
    world.cast_bytes_at(t + Duration::from_millis(2), d, &b"M: D's last words"[..]);
    println!("[t+5ms]  D crashes");
    world.crash_at(t + Duration::from_millis(5), d);
    println!("[t+8ms]  the hiccup heals; the flush protocol takes over\n");
    world.heal_at(t + Duration::from_millis(8));
    world.run_for(Duration::from_secs(3));

    for (&ep, name) in [a, b, c].iter().zip(["A", "B", "C"]) {
        let got = world.delivered_casts(ep);
        let m: Vec<_> = got.iter().filter(|(s, _, _)| *s == d).collect();
        let recovered = world
            .upcalls(ep)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Cast { src, msg } if *src == d => Some(msg.meta.flush_recovered),
                _ => None,
            })
            .next()
            .unwrap_or(false);
        println!(
            "{name} delivered M {} time(s){}",
            m.len(),
            if recovered { " — recovered by the flush, not received from D" } else { "" }
        );
        assert_eq!(m.len(), 1, "virtual synchrony: M reaches every survivor");
    }
    let final_view = world.installed_views(a).last().expect("final view").clone();
    println!("\nnew view installed: {final_view}");
    assert_eq!(final_view.members(), &[a, b, c]);
    println!("Figure 2 reproduced: the crash is indistinguishable from a clean fail-stop ✓");
    Ok(())
}
