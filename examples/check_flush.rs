//! Exhaustive bounded check of the Figure 2 flush/merge story — and what a
//! found bug looks like.
//!
//! Part 1 explores every schedule of the `flush3` scenario within the
//! configured bounds (reordering window, branch depth, one induced message
//! drop) and expects zero virtual-synchrony violations: the MBRSHIP flush
//! protocol keeps its promise under *every* delivery order the bounds cover,
//! not just the calendar one.
//!
//! Part 2 plants a bug on purpose: the `fifo2` scenario runs a bare
//! best-effort stack against a FIFO oracle.  The explorer finds a violating
//! schedule, delta-debugging shrinks it, and the shrunk schedule replays to
//! the identical verdict — which is exactly what `horus-check explore --out`
//! writes to a file you can commit as a regression fixture.
//!
//! Run with: `cargo run --release --example check_flush`

use horus_check::schedule::verdict_line;
use horus_check::{explore, replay_choices, shrink, CheckConfig, Scenario, Schedule};
use std::time::Duration;

fn main() {
    // Part 1: the paper's flush protocol, checked exhaustively in bounds.
    let flush = Scenario::by_name("flush3").expect("registered scenario");
    let cfg = CheckConfig {
        window: Duration::from_micros(100),
        max_depth: 5,
        max_drops: 1,
        max_states: 50_000,
        max_runs: 5_000,
        ..CheckConfig::default()
    };
    println!(
        "exploring {} (depth {}, {} drop budget)...",
        flush.name, cfg.max_depth, cfg.max_drops
    );
    let report = explore(flush, &cfg);
    println!(
        "  {} runs, {} states, {} branch points, {} pruned — {}",
        report.runs,
        report.states,
        report.branch_points,
        report.pruned,
        if report.exhausted { "space exhausted" } else { "budget reached" },
    );
    match &report.violation {
        None => println!("  virtual synchrony holds on every explored schedule"),
        Some(v) => {
            println!("  UNEXPECTED VIOLATION ({}): {}", v.oracle, v.message);
            std::process::exit(1);
        }
    }

    // Part 2: a planted bug, found, shrunk, and replayed byte-identically.
    let fifo = Scenario::by_name("fifo2").expect("registered scenario");
    let cfg2 = CheckConfig { max_depth: 4, ..CheckConfig::default() };
    println!("\nexploring {} (a stack with no ordering guarantees vs a FIFO oracle)...", fifo.name);
    let report2 = explore(fifo, &cfg2);
    let v = report2.violation.expect("the planted bug must be found");
    println!("  found after {} runs ({}): {}", report2.runs, v.oracle, v.message);

    let small = shrink(fifo, &cfg2, v.oracle, &v.choices);
    println!("  shrunk {} choices -> {} ({:?})", v.choices.len(), small.len(), small);

    let rec1 = replay_choices(fifo, &small, &cfg2);
    let rec2 = replay_choices(fifo, &small, &cfg2);
    let verdict = verdict_line(&rec1);
    assert_eq!(verdict, verdict_line(&rec2), "replay must be deterministic");
    println!("  replayed twice, identical verdict: {verdict}");

    let schedule = Schedule::new(fifo, &cfg2, &small, verdict);
    println!("\ncommittable schedule file:\n{}", schedule.serialize());
}
