//! The Figure 1 service layers in one composition: an RPC time service
//! with synchronized clocks over an encrypted, membership-managed group.
//!
//! Stack: `RPC : CLOCKSYNC : SECURE : MBRSHIP : FRAG : NAK : COM`.
//! Three members with skewed local clocks form a secure group; clients
//! RPC the senior member for the time; CLOCKSYNC lets each member check
//! the answer against its own corrected clock.
//!
//! ```text
//! cargo run --example rpc_time_service
//! ```

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_layers::services::ClockSync;
use horus_net::NetConfig;
use std::time::Duration;

fn main() -> Result<(), HorusError> {
    let group = GroupAddr::new(1);
    let skews_us: [i64; 3] = [0, 8_000, -4_000]; // simulated clock drift
    let mut world = SimWorld::new(11, NetConfig::reliable());
    for (i, skew) in (1..=3u64).zip(skews_us) {
        let desc = format!(
            "RPC:CLOCKSYNC(skew_us={skew}):SECURE(master=48879):MBRSHIP:FRAG:NAK:COM(promiscuous=true)"
        );
        let stack = build_stack(EndpointAddr::new(i), &desc, StackConfig::default())?;
        world.add_endpoint(stack);
        world.join(EndpointAddr::new(i), group);
    }
    for i in 2..=3 {
        world.down(EndpointAddr::new(i), Down::Merge { contact: EndpointAddr::new(1) });
    }
    world.run_for(Duration::from_secs(2));
    println!(
        "secure group formed: {}",
        world.installed_views(EndpointAddr::new(1)).last().expect("view")
    );

    // Client ep3 asks the time server (ep1, the senior member) via RPC.
    let mut req = world.stack(EndpointAddr::new(3)).unwrap().new_message(&b"time?"[..]);
    req.meta.rpc = Some((0, false));
    world.down(EndpointAddr::new(3), Down::Send { dests: vec![EndpointAddr::new(1)], msg: req });
    world.run_for(Duration::from_millis(50));

    // The "server application": answer every pending request with the
    // master's local clock.
    let pending: Vec<(EndpointAddr, u64)> = world
        .upcalls(EndpointAddr::new(1))
        .iter()
        .filter_map(|(_, up)| match up {
            Up::Send { src, msg } => {
                msg.meta.rpc.and_then(|(id, is_reply)| (!is_reply).then_some((*src, id)))
            }
            _ => None,
        })
        .collect();
    println!("server saw {} request(s)", pending.len());
    let server_now = world.now().as_micros();
    let captured_at = world.now();
    for (client, id) in pending {
        let mut rsp = world
            .stack(EndpointAddr::new(1))
            .unwrap()
            .new_message(format!("{server_now}").into_bytes());
        rsp.meta.rpc = Some((id, true));
        world.down(EndpointAddr::new(1), Down::Send { dests: vec![client], msg: rsp });
    }
    world.run_for(Duration::from_millis(100));

    // Client got the reply; its CLOCKSYNC-corrected clock should agree
    // with the server's answer to within the RTT.
    let reply: String = world
        .upcalls(EndpointAddr::new(3))
        .iter()
        .filter_map(|(_, up)| match up {
            Up::Send { msg, .. } if matches!(msg.meta.rpc, Some((_, true))) => {
                Some(String::from_utf8_lossy(msg.body()).to_string())
            }
            _ => None,
        })
        .next()
        .expect("RPC reply");
    let server_time: i64 = reply.parse().expect("numeric reply");
    let cs: &ClockSync =
        world.stack(EndpointAddr::new(3)).unwrap().focus_as("CLOCKSYNC").expect("clocksync layer");
    let corrected = cs.corrected_clock_us(world.now());
    // The world ran on after the server answered; account for the elapsed
    // virtual time when comparing.
    let elapsed = world.now().saturating_since(captured_at).as_micros() as i64;
    println!("server said {server_time} µs (then {elapsed} µs passed);");
    println!("client's corrected clock now reads {corrected} µs");
    println!(
        "client raw skew was {} µs; estimated offset {} µs",
        skews_us[2],
        cs.estimated_offset_us().unwrap_or(0)
    );
    assert!((corrected - server_time - elapsed).abs() < 1_000, "clocks agree to within ~RTT");
    println!("\nRPC + CLOCKSYNC + SECURE composed over the membership stack ✓");
    Ok(())
}
