//! Seeded chaos-soak campaign driver (liveness under faults, §5/§9).
//!
//! Each iteration derives a random fault plan from the seed — set-based
//! partitions that heal, crashes, suspicion storms, merge nudges — runs
//! it against a self-healing MERGE stack under lossy network physics,
//! and judges the run with both the safety checkers and the liveness
//! monitors (progress watchdog, post-heal view convergence, final-view
//! delivery).  On violation the fault plan is ddmin-minimized and
//! emitted as a replayable `(seed, plan)` artifact.
//!
//! ```text
//! cargo run --example soak                                # default campaign
//! cargo run --example soak -- --seeds 8 --seed-base 100
//! cargo run --example soak -- --stack "MERGE(contacts=1,period=50):MBRSHIP:FRAG:NAK(retransmit=false):COM(promiscuous=true)" --expect-violation
//! cargo run --example soak -- --replay plan.soak
//! cargo run --example soak -- --out minimized.soak
//! cargo run --example soak -- --replay plan.soak --trace run.trace --trace-sample 16
//! ```
//!
//! Exit status: 0 when the campaign matches expectations (clean by
//! default, violating under `--expect-violation`), 1 otherwise.

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::soak::{
    gen_plan, minimize_plan, parse_artifact, run_soak, run_soak_traced, serialize_artifact_traced,
    SoakConfig, SoakOutcome, SoakPlan,
};
use horus::trace::{serialize_trace, TraceBuf, META_SAMPLED_OUT, META_SAMPLE_EVERY};
use std::process::ExitCode;
use std::sync::Arc;

/// Runs one soak, optionally capturing a sampled trace to `path`.
fn run_with_capture(
    cfg: &SoakConfig,
    plan: &SoakPlan,
    factory: &dyn Fn(EndpointAddr) -> Stack,
    capture: Option<&str>,
) -> SoakOutcome {
    let Some(path) = capture else {
        return run_soak(cfg, plan, factory);
    };
    let buf = Arc::new(TraceBuf::new());
    let outcome = run_soak_traced(cfg, plan, factory, Some(buf.clone()));
    let meta = vec![
        (META_SAMPLE_EVERY.to_string(), cfg.trace_sample.max(1).to_string()),
        (META_SAMPLED_OUT.to_string(), outcome.trace_sampled_out.to_string()),
        ("scenario".to_string(), "soak".to_string()),
        ("seed".to_string(), cfg.seed.to_string()),
        ("stack".to_string(), cfg.stack.clone()),
    ];
    let text = serialize_trace(&meta, &buf.take());
    std::fs::write(path, &text).expect("write trace");
    println!(
        "  trace: kept={} sampled_out={} (1-in-{}) -> {path}",
        outcome.trace_kept,
        outcome.trace_sampled_out,
        cfg.trace_sample.max(1)
    );
    outcome
}

fn main() -> ExitCode {
    let mut cfg = SoakConfig::default();
    let mut seeds = 4u64;
    let mut seed_base = 1u64;
    let mut expect_violation = false;
    let mut out: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut show_transcript = false;
    let mut trace: Option<String> = None;
    let mut trace_sample: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--seeds" => {
                seeds = need(i).parse().expect("--seeds N");
                i += 1;
            }
            "--seed-base" => {
                seed_base = need(i).parse().expect("--seed-base N");
                i += 1;
            }
            "--events" => {
                cfg.events = need(i).parse().expect("--events N");
                i += 1;
            }
            "--loss" => {
                cfg.loss = need(i).parse().expect("--loss P");
                i += 1;
            }
            "--stack" => {
                cfg.stack = need(i);
                i += 1;
            }
            "--out" => {
                out = Some(need(i));
                i += 1;
            }
            "--replay" => {
                replay = Some(need(i));
                i += 1;
            }
            "--trace" => {
                trace = Some(need(i));
                i += 1;
            }
            "--trace-sample" => {
                trace_sample = Some(need(i).parse().expect("--trace-sample N"));
                i += 1;
            }
            "--expect-violation" => expect_violation = true,
            "--transcript" => show_transcript = true,
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if let Some(path) = replay {
        let text = std::fs::read_to_string(&path).expect("read artifact");
        let (mut cfg, plan) = parse_artifact(&text).expect("parse artifact");
        if let Some(n) = trace_sample {
            cfg.trace_sample = n;
        }
        let stack = cfg.stack.clone();
        let factory = |ep: EndpointAddr| {
            build_stack(ep, &stack, StackConfig::default()).expect("stack builds")
        };
        let outcome = run_with_capture(&cfg, &plan, &factory, trace.as_deref());
        println!(
            "replay {path}: seed {} events {} -> {} violation(s), {} deliveries",
            cfg.seed,
            plan.events.len(),
            outcome.violations.len(),
            outcome.delivered
        );
        for v in &outcome.violations {
            println!("  {v}");
        }
        if show_transcript {
            print!("{}", outcome.transcript);
        }
        if !outcome.violations.is_empty() {
            // Show where the leftover work lives, layer by layer.
            for (m, pending, layers) in &outcome.dumps {
                println!("  {m} pending={pending}: {layers}");
            }
        }
        let bad = outcome.violations.is_empty() == expect_violation;
        return ExitCode::from(u8::from(bad));
    }

    if let Some(n) = trace_sample {
        cfg.trace_sample = n;
    }
    let stack = cfg.stack.clone();
    let factory =
        |ep: EndpointAddr| build_stack(ep, &stack, StackConfig::default()).expect("stack builds");
    let mut violating = 0u64;
    for s in 0..seeds {
        let cfg = SoakConfig { seed: seed_base + s, ..cfg.clone() };
        let plan = gen_plan(&cfg);
        let capture = trace.as_ref().map(|t| format!("{t}.seed{}", cfg.seed));
        let outcome = run_with_capture(&cfg, &plan, &factory, capture.as_deref());
        if outcome.violations.is_empty() {
            println!(
                "seed {:>4}: clean  ({} events, {} windows, {} deliveries)",
                cfg.seed,
                plan.events.len(),
                outcome.windows,
                outcome.delivered
            );
            continue;
        }
        violating += 1;
        println!(
            "seed {:>4}: VIOLATION after {} windows — {}",
            cfg.seed, outcome.windows, outcome.violations[0]
        );
        let min = minimize_plan(&cfg, &plan, &factory, 200);
        let min_capture = capture.as_ref().map(|c| format!("{c}.min"));
        let verdict = run_with_capture(&cfg, &min, &factory, min_capture.as_deref());
        println!(
            "  minimized {} -> {} event(s); first oracle: {}",
            plan.events.len(),
            min.events.len(),
            verdict.violations.first().map(|v| v.to_string()).unwrap_or_default()
        );
        let counts = trace.as_ref().map(|_| (verdict.trace_kept, verdict.trace_sampled_out));
        let artifact = serialize_artifact_traced(&cfg, &min, &verdict.violations, counts);
        match &out {
            Some(path) => {
                std::fs::write(path, &artifact).expect("write artifact");
                println!("  artifact written to {path}");
            }
            None => print!("{artifact}"),
        }
    }
    let ok = if expect_violation { violating > 0 } else { violating == 0 };
    println!(
        "campaign: {seeds} iteration(s), {violating} violating — {}",
        if ok { "as expected" } else { "UNEXPECTED" }
    );
    ExitCode::from(u8::from(!ok))
}
