//! The UNIX-socket embedding (§1, §11), running in real time on the
//! threaded executor: "a UNIX sendto operation will be mapped to a
//! multicast, and a recvfrom will receive the next incoming message".
//!
//! Three "processes" chat through `GroupSocket`s without ever seeing the
//! HCPI, views, or flushes — Horus hides behind the datagram API.
//!
//! ```text
//! cargo run --example sockets
//! ```

use horus::socket::GroupSocket;
use horus_core::{EndpointAddr, GroupAddr};
use horus_net::LoopbackNet;
use std::time::Duration;

fn main() -> Result<(), horus_core::HorusError> {
    let net = LoopbackNet::new();
    let group = GroupAddr::new(1);

    // Each socket runs its own protocol stack — checksummed reliable FIFO.
    let mut sockets: Vec<GroupSocket> = (1..=3)
        .map(|i| GroupSocket::bind(&net, EndpointAddr::new(i), "CHKSUM:NAK:COM"))
        .collect::<Result<_, _>>()?;
    for s in &sockets {
        s.join(group);
        println!("{} joined {group}", s.local_addr());
    }
    std::thread::sleep(Duration::from_millis(30));

    sockets[0].sendto(&b"hello from ep1"[..]);
    sockets[1].sendto(&b"and from ep2"[..]);

    for s in &mut sockets {
        let me = s.local_addr();
        for _ in 0..2 {
            match s.recvfrom(Duration::from_secs(5)) {
                Some((from, body)) => {
                    println!("{me} <- {from}: {}", String::from_utf8_lossy(&body))
                }
                None => panic!("{me}: timed out waiting for a datagram"),
            }
        }
    }
    for s in sockets {
        s.close();
    }
    println!("socket embedding works: no HCPI in sight ✓");
    Ok(())
}
