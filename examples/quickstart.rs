//! Quickstart: compose the paper's §7 stack at run time, form a group,
//! and multicast with totally ordered, virtually synchronous delivery.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::time::Duration;

fn main() -> Result<(), HorusError> {
    // The canonical Horus stack, described as a string and composed at
    // run time — the LEGO-block premise of the paper.
    const STACK: &str = "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)";
    let group = GroupAddr::new(1);

    // A deterministic world: same seed, same run, every time.
    let mut world = SimWorld::new(2026, NetConfig::lossy(0.05));

    println!("composing {STACK} for three endpoints");
    for i in 1..=3 {
        let ep = EndpointAddr::new(i);
        let stack = build_stack(ep, STACK, StackConfig::default())?;
        world.add_endpoint(stack);
        world.join(ep, group);
    }
    // Members 2 and 3 merge toward member 1 to form the group.
    for i in 2..=3 {
        world.down(EndpointAddr::new(i), Down::Merge { contact: EndpointAddr::new(1) });
    }
    world.run_for(Duration::from_secs(2));

    let view = world.installed_views(EndpointAddr::new(1)).last().expect("view installed").clone();
    println!("group formed: {view}");

    // Concurrent casts from all members: TOTAL orders them identically
    // everywhere, even over a 5%-lossy network.
    for k in 0..5u64 {
        for i in 1..=3u64 {
            world.cast_bytes(EndpointAddr::new(i), format!("msg {k} from ep{i}").into_bytes());
        }
    }
    world.run_for(Duration::from_secs(2));

    for i in 1..=3u64 {
        let ep = EndpointAddr::new(i);
        println!("\ndeliveries at ep{i} (in total order):");
        for (src, body, _) in world.delivered_casts(ep) {
            println!("  [{src}] {}", String::from_utf8_lossy(&body));
        }
    }

    // Every member saw the identical sequence.
    let seq1: Vec<_> = world
        .delivered_casts(EndpointAddr::new(1))
        .iter()
        .map(|(s, b, _)| (*s, b.clone()))
        .collect();
    for i in 2..=3 {
        let seq: Vec<_> = world
            .delivered_casts(EndpointAddr::new(i))
            .iter()
            .map(|(s, b, _)| (*s, b.clone()))
            .collect();
        assert_eq!(seq1, seq, "total order must agree");
    }
    println!("\nall members delivered {} messages in the same global order ✓", seq1.len());
    Ok(())
}
