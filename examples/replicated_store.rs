//! State-machine replication over the Horus stack — the paper's §9 claim
//! in action: "it is straightforward to implement replicated data ... in
//! Horus.  Horus achieves the necessary consistency guarantees through
//! ordering and atomicity properties provided by its process group and
//! communication protocols."
//!
//! Each member runs a key-value store and applies every delivered command
//! in the (identical) total order.  One replica crashes mid-run; the
//! survivors keep identical state without any application-level recovery
//! code.
//!
//! ```text
//! cargo run --example replicated_store
//! ```

use horus::layers::registry::build_stack;
use horus::prelude::*;
use horus::sim::SimWorld;
use horus_net::NetConfig;
use std::collections::BTreeMap;
use std::time::Duration;

/// A command encoded as `key=value` bytes.
fn cmd(key: &str, value: u64) -> Vec<u8> {
    format!("{key}={value}").into_bytes()
}

/// Replays a member's deliveries into a store.
fn replay(world: &SimWorld, ep: EndpointAddr) -> BTreeMap<String, u64> {
    let mut store = BTreeMap::new();
    for (_, body, _) in world.delivered_casts(ep) {
        let text = String::from_utf8_lossy(&body);
        if let Some((k, v)) = text.split_once('=') {
            if let Ok(v) = v.parse::<u64>() {
                store.insert(k.to_string(), v);
            }
        }
    }
    store
}

fn main() -> Result<(), HorusError> {
    let group = GroupAddr::new(1);
    let members: Vec<EndpointAddr> = (1..=4).map(EndpointAddr::new).collect();
    let mut world = SimWorld::new(99, NetConfig::lossy(0.08));
    for &ep in &members {
        let stack = build_stack(
            ep,
            "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)",
            StackConfig::default(),
        )?;
        world.add_endpoint(stack);
        world.join(ep, group);
    }
    for &ep in &members[1..] {
        world.down(ep, Down::Merge { contact: members[0] });
    }
    world.run_for(Duration::from_secs(2));
    println!("4 replicas formed {}", world.installed_views(members[0]).last().unwrap());

    // Conflicting writers: every member updates the same keys
    // concurrently; total order decides the winner identically everywhere.
    let t = world.now();
    for round in 0..10u64 {
        for (i, &ep) in members.iter().enumerate() {
            world.cast_bytes_at(
                t + Duration::from_millis(2 * round + 1),
                ep,
                cmd(&format!("k{}", round % 3), round * 10 + i as u64),
            );
        }
    }
    // Replica 3 crashes mid-run.
    world.crash_at(t + Duration::from_millis(9), members[2]);
    world.run_for(Duration::from_secs(3));

    let mut states = Vec::new();
    for &ep in &members {
        if !world.is_alive(ep) {
            println!("{ep}: crashed (excluded from the view by the flush protocol)");
            continue;
        }
        let store = replay(&world, ep);
        println!("{ep}: {store:?}");
        states.push(store);
    }
    for w in states.windows(2) {
        assert_eq!(w[0], w[1], "replicated state must be identical");
    }
    println!(
        "\nall surviving replicas agree on {} keys despite 8% loss and a crash ✓",
        states[0].len()
    );
    Ok(())
}
